//! The worker server: the discrete-event world tying orchestrators,
//! executors, PrivLib, and the hardware model together (Figures 3 & 4).

use jord_hw::types::{CoreId, PdId, Perm, Va};
use jord_hw::{CrashPlan, Csr, Fault, FaultInjector, FaultKind, InjectionPlan, Machine};
use jord_privlib::{os, PrivError, PrivLib};
use jord_sim::{EventId, EventQueue, Rng, SimDuration, SimTime};
use jord_vma::SizeClass;
use std::collections::BTreeMap;

use crate::admission::{AdmissionPolicy, BrownoutLevel, FailureDisposition};
use crate::argbuf::ArgBuf;
use crate::config::{ConfigError, RuntimeConfig};
use crate::events::{
    AbortCause, EventBus, LifecycleEvent, RetryKind, TraceEntry, WorkerNotice, TRACE_CAPACITY,
};
use crate::executor::Executor;
use crate::function::{FuncOp, FunctionId, FunctionRegistry};
use crate::invocation::{Invocation, InvocationId, InvocationSlab, Origin, Phase};
use crate::journal::{InvocationJournal, PendingRetry, WorkerCheckpoint};
use crate::lifecycle::LifecycleEngine;
use crate::memory::{MemoryLedger, MemoryPressure, PdPool, PooledPd};
use crate::orchestrator::Orchestrator;
use crate::stats::RunReport;

mod crash;

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// An external request arrives from the network.
    Arrival {
        /// The lifecycle-engine request id minted at [`WorkerServer::push_tagged_request`].
        req: u64,
        func: FunctionId,
        bytes: u64,
        /// Cluster request tag (0 = untagged / single-worker mode).
        tag: u64,
    },
    /// An orchestrator is ready for its next dispatch action.
    OrchWake(usize),
    /// An executor is ready for its next continuation action.
    ExecWake(usize),
    /// A spilled internal request finished on a peer worker server (§3.3).
    RemoteComplete(InvocationId),
    /// A failed external request is re-dispatched after backoff, keeping
    /// its original arrival time so measured latency stays honest.
    Retry {
        /// The lifecycle-engine request id (stable across retries).
        req: u64,
        /// The function to re-dispatch.
        func: FunctionId,
        /// Argument payload size.
        bytes: u64,
        /// The original network receipt time.
        arrival: SimTime,
        /// Which attempt this dispatch is (first retry = 1).
        attempt: u32,
        /// The pending-retry token the lifecycle engine minted for it.
        token: u64,
        /// Cluster request tag (0 = untagged).
        tag: u64,
    },
}

/// A request stranded on a worker the cluster declared dead: recovered
/// from the journal (or the undelivered arrival queue) and handed to the
/// dispatcher for cross-worker failover instead of local re-admission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrandedRequest {
    /// The cluster request tag (0 if an untagged request was stranded).
    pub tag: u64,
    /// The function.
    pub func: FunctionId,
    /// Payload size.
    pub bytes: u64,
    /// Original arrival time (latency anchors survive failover).
    pub arrival: SimTime,
}

/// Base of the runtime's shared-memory region (queue lines, inbox lines).
const RT_BASE: u64 = 0x80_0000_0000;
/// Orchestrator backoff before re-scanning when all executor queues are
/// full (a dedicated spinning core in reality).
const FULL_RETRY: SimDuration = SimDuration::from_ns(100);
/// Executor work to push one internal request into an orchestrator inbox.
const INTERNAL_PUSH_NS: f64 = 8.0;
/// Executor work to assemble a completion notice.
const NOTIFY_NS: f64 = 10.0;
/// A VA no VMA can cover (its codec tag bits are wrong), so a read of it
/// is guaranteed to walk the table and raise [`Fault::Unmapped`] — the
/// injector's "wild access".
const WILD_VA: Va = 0x10;

/// A simulated Jord worker server.
///
/// See the crate docs for an end-to-end example.
pub struct WorkerServer {
    cfg: RuntimeConfig,
    machine: Machine,
    privlib: PrivLib,
    registry: FunctionRegistry,
    /// Per-function code VMA (granted/revoked per invocation, Figure 4).
    code_vmas: Vec<Va>,
    /// PrivLib's own code VMA (G+P bits; fetched on every gated entry).
    privlib_code: Va,
    orchs: Vec<Orchestrator>,
    execs: Vec<Executor>,
    slab: InvocationSlab,
    queue: EventQueue<Event>,
    /// Cancellation handle of every still-undelivered `Event::Arrival`,
    /// keyed by lifecycle request id: [`cancel_tagged`](Self::cancel_tagged)
    /// withdraws an Offered request in O(1) instead of scanning the queue.
    arrival_eids: BTreeMap<u64, EventId>,
    rng: Rng,
    /// Deterministic misbehavior planner (its own forked RNG stream, so
    /// fault schedules do not perturb workload sampling).
    injector: Option<FaultInjector>,
    /// Admission/retry policy: routing, shedding, deadlines, backoff.
    admission: AdmissionPolicy,
    /// The per-request state machine: the only authority on whether a
    /// request may change state, and the table every cluster hook reads.
    lifecycle: LifecycleEngine,
    /// The ordered event stream and its sinks: journal, stats, notices,
    /// trace. All bookkeeping mutation happens inside the bus.
    bus: EventBus,
    /// Latest checkpoint (recovery restores from here).
    checkpoint: Option<WorkerCheckpoint>,
    /// The checkpoint before the latest one, kept as the recovery
    /// ladder's fallback when the latest checkpoint's seal no longer
    /// verifies against the (possibly corrupted) durable log.
    prev_checkpoint: Option<WorkerCheckpoint>,
    /// The injected crash that has not fired yet.
    crash_pending: Option<CrashPlan>,
    /// Warm sanitized PDs (code grant + stack/heap intact) with
    /// working-set tracking and a claim registry — the memory governor's
    /// reclamation target.
    pd_pool: PdPool,
    /// The memory-pressure level currently in force (governor-published).
    pressure: MemoryPressure,
    /// Highest resident-byte watermark seen at a governor tick.
    peak_resident: u64,
}

/// Everything a pristine process image contains: the booted machine and
/// PrivLib, the deployed code VMAs, and the orchestrator/executor layout.
/// Built once at [`WorkerServer::new`] and again on every whole-worker
/// crash — recovery is restore-to-pristine-image plus journal replay.
struct BootParts {
    machine: Machine,
    privlib: PrivLib,
    code_vmas: Vec<Va>,
    privlib_code: Va,
    orchs: Vec<Orchestrator>,
    execs: Vec<Executor>,
}

impl WorkerServer {
    /// Builds a worker server for `cfg` with `registry` deployed.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] describing any configuration problem.
    pub fn new(cfg: RuntimeConfig, registry: FunctionRegistry) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if registry.is_empty() {
            return Err(ConfigError::NoFunctions);
        }
        let parts = Self::boot_parts(&cfg, &registry)?;
        let admission = AdmissionPolicy::new(cfg.recovery, cfg.orchestrators, cfg.executors());
        let seed = cfg.seed;
        let mut rng = Rng::new(seed);
        // The injector gets its own stream: the same seed yields the same
        // fault schedule no matter how workload sampling evolves.
        let injector = cfg
            .inject
            .map(|ic| FaultInjector::new(ic, rng.fork(0xFA_17)));
        let bus = EventBus::new(cfg.crash.map(|_| InvocationJournal::new()), TRACE_CAPACITY);
        let crash_pending = cfg.crash.and_then(|c| c.plan);
        let pd_pool = PdPool::new(registry.len());
        Ok(WorkerServer {
            cfg,
            machine: parts.machine,
            privlib: parts.privlib,
            registry,
            code_vmas: parts.code_vmas,
            privlib_code: parts.privlib_code,
            orchs: parts.orchs,
            execs: parts.execs,
            slab: InvocationSlab::new(),
            queue: EventQueue::new(),
            arrival_eids: BTreeMap::new(),
            rng,
            injector,
            admission,
            lifecycle: LifecycleEngine::new(),
            bus,
            checkpoint: None,
            prev_checkpoint: None,
            crash_pending,
            pd_pool,
            pressure: MemoryPressure::Normal,
            peak_resident: 0,
        })
    }

    /// Boots a pristine process image for `cfg`: fresh machine, fresh
    /// PrivLib (bootstrap VMAs reinstalled), per-function code VMAs, and
    /// the core-affine orchestrator/executor layout.
    fn boot_parts(
        cfg: &RuntimeConfig,
        registry: &FunctionRegistry,
    ) -> Result<BootParts, ConfigError> {
        let mut machine = Machine::new(cfg.machine.clone());
        let (mut privlib, boot_vmas) = os::boot_full(
            &mut machine,
            cfg.variant.table(),
            cfg.variant.isolation(),
            jord_privlib::CostModel::calibrated(),
        )?;

        // One code VMA per deployed function.
        let mut code_vmas = Vec::with_capacity(registry.len());
        for (_, _spec) in registry.iter() {
            let (va, _) =
                privlib.mmap(&mut machine, CoreId(0), 256 << 10, Perm::RX, PdId::RUNTIME)?;
            code_vmas.push(va);
        }

        // Core assignment with affinity (§3.3/6.3): orchestrator cores are
        // spread evenly across the machine (and thus across sockets), and
        // each orchestrator manages the contiguous run of executor cores
        // following its own — "a group of executors in proximity".
        let n_orch = cfg.orchestrators;
        let n_exec = cfg.executors();
        let cores = cfg.machine.cores;
        let stride = cores as f64 / n_orch as f64;
        let orch_cores: Vec<usize> = (0..n_orch).map(|i| (i as f64 * stride) as usize).collect();
        let exec_cores: Vec<usize> = (0..cores).filter(|c| !orch_cores.contains(c)).collect();
        debug_assert_eq!(exec_cores.len(), n_exec);
        let mut orchs: Vec<Orchestrator> = Vec::with_capacity(n_orch);
        for i in 0..n_orch {
            let start = exec_cores.partition_point(|&c| c < orch_cores[i]);
            let end = if i + 1 < n_orch {
                exec_cores.partition_point(|&c| c < orch_cores[i + 1])
            } else {
                n_exec
            };
            orchs.push(Orchestrator::new(
                CoreId(orch_cores[i]),
                start..end,
                RT_BASE + (i as u64) * 256,
                RT_BASE + (i as u64) * 256 + 64,
            ));
        }
        let execs = (0..n_exec)
            .map(|e| {
                let orch = orchs
                    .iter()
                    .position(|o| o.group.contains(&e))
                    .expect("every executor has an orchestrator");
                Executor::new(
                    CoreId(exec_cores[e]),
                    orch,
                    RT_BASE + 0x10_0000 + (e as u64) * 64,
                )
            })
            .collect();

        Ok(BootParts {
            machine,
            privlib,
            code_vmas,
            privlib_code: boot_vmas.privlib_code,
            orchs,
            execs,
        })
    }

    /// Discards the first `n` completed external requests (and the
    /// invocation records of everything finishing before them) from the
    /// measurement, so cold-cache effects do not pollute tail latencies.
    pub fn set_warmup(&mut self, n: u64) {
        self.bus.set_warmup(n);
    }

    fn measuring(&self) -> bool {
        self.bus.measuring()
    }

    /// Routes a lifecycle event through the engine (the single legality
    /// authority) and publishes it on the bus, which fans the resulting
    /// effects out to the journal, stats, notice, and trace sinks — the
    /// only place in the server where bookkeeping state changes.
    fn emit(&mut self, ev: LifecycleEvent) {
        let effects = self
            .lifecycle
            .apply(&ev)
            .unwrap_or_else(|e| panic!("illegal lifecycle transition: {e} ({ev:?})"));
        self.bus.publish(&ev, &effects);
    }

    /// Schedules an external request for `func` carrying `bytes` of
    /// arguments to arrive at `time`. Call before [`run`](Self::run).
    pub fn push_request(&mut self, time: SimTime, func: FunctionId, bytes: u64) {
        self.push_tagged_request(time, func, bytes, 0);
    }

    /// [`push_request`](Self::push_request) with a cluster tag: a non-zero
    /// `tag` makes the request's terminal event surface as a
    /// [`WorkerNotice`]. A cluster dispatcher may also push tagged
    /// requests mid-run (between [`step`](Self::step)s), as long as `time`
    /// is not in this worker's past.
    pub fn push_tagged_request(&mut self, time: SimTime, func: FunctionId, bytes: u64, tag: u64) {
        let req = self.lifecycle.alloc_req();
        self.emit(LifecycleEvent::Offered {
            req,
            func,
            bytes,
            tag,
            at: time,
        });
        let eid = self.queue.schedule(
            time,
            Event::Arrival {
                req,
                func,
                bytes,
                tag,
            },
        );
        self.arrival_eids.insert(req, eid);
    }

    /// Runs the simulation to completion (all injected requests finished)
    /// and returns the measurement report.
    pub fn run(&mut self) -> RunReport {
        self.begin();
        while self.step() {}
        self.seal()
    }

    /// Prepares the worker for stepping: journaled runs start from a
    /// checkpoint so recovery always has a base image to replay from.
    /// [`run`](Self::run) calls this itself; a cluster dispatcher driving
    /// the worker via [`step`](Self::step) calls it once up front.
    pub fn begin(&mut self) {
        if self.bus.journaling() && self.checkpoint.is_none() {
            self.take_checkpoint(self.queue.now());
        }
    }

    /// The time of this worker's next pending event, if any — what a
    /// cluster dispatcher interleaving several workers under one clock
    /// uses to pick the globally earliest event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Processes one event (or fires the armed crash); returns `false`
    /// when the event queue is empty and the worker is quiescent.
    pub fn step(&mut self) -> bool {
        // An armed crash fires the moment the next event would run at
        // or past its instant — i.e. between events, where the DES
        // guarantees no invocation is mid-segment.
        if let Some(plan) = self.crash_pending {
            let due = SimTime::ZERO + SimDuration::from_ns_f64(plan.at_us * 1_000.0);
            if self.queue.peek_time().is_some_and(|next| next >= due) {
                self.crash_pending = None;
                self.crash_now(due.max(self.queue.now()), plan.scope);
                return true;
            }
        }
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        match ev {
            Event::Arrival {
                req,
                func,
                bytes,
                tag,
            } => {
                self.arrival_eids.remove(&req);
                self.on_arrival(t, req, func, bytes, tag)
            }
            Event::OrchWake(i) => self.on_orch_wake(t, i),
            Event::ExecWake(e) => self.on_exec_wake(t, e),
            Event::RemoteComplete(id) => self.on_remote_complete(t, id),
            Event::Retry {
                req,
                func,
                bytes,
                arrival,
                attempt,
                token,
                tag,
            } => {
                self.emit(LifecycleEvent::RetryFired { req, token });
                self.admit(t, req, func, bytes, arrival, attempt, tag);
            }
        }
        self.maybe_checkpoint(t);
        true
    }

    /// Finalizes a drained run: drains PD pools, checks the conservation
    /// invariants, and assembles the measurement report.
    pub fn seal(&mut self) -> RunReport {
        // Snapshot the byte-side ledger before the final pool drain: the
        // report records what the run held; the drain just hands it back.
        let memory = self.memory_ledger();
        // Return pooled sanitized PDs before the leak accounting below.
        self.drain_pd_pools();
        debug_assert!(self.slab.is_empty(), "all invocations must complete");
        debug_assert!(
            self.lifecycle.is_empty(),
            "every request row must reach a terminal state — none lost"
        );
        let finished_at = self.queue.now();
        let shootdown_ns = self.machine.stats().shootdown_ns;
        self.bus.seal(
            finished_at,
            shootdown_ns,
            self.orchs.iter().map(|o| &o.dispatch_ns),
            memory,
        )
    }

    /// The byte-side memory ledger as of now: PrivLib's mmap/munmap
    /// chokepoint counters plus pool and watermark state. The
    /// event-derived activity counts (evictions, compactions, pressure
    /// transitions) and journal/checkpoint bytes are folded in by the bus
    /// at seal.
    pub fn memory_ledger(&self) -> MemoryLedger {
        let mc = self.privlib.memory();
        let resident = mc.resident_bytes();
        MemoryLedger {
            mapped_bytes: mc.mapped_bytes,
            resident_bytes: resident,
            reclaimed_bytes: mc.reclaimed_bytes,
            peak_resident_bytes: self.peak_resident.max(resident),
            pooled_pds: self.pd_pool.pooled() as u64,
            pooled_bytes: self.pd_pool.pooled_bytes(),
            ..MemoryLedger::default()
        }
    }

    /// The memory-pressure level currently in force.
    pub fn memory_pressure(&self) -> MemoryPressure {
        self.pressure
    }

    /// Always-on op counters of this worker's own event queue — the
    /// per-shard view the cluster merges into its report, so op-count
    /// regressions stay assertable whatever the engine's thread count.
    pub fn queue_probe(&self) -> jord_sim::QueueProbe {
        self.queue.probe()
    }

    /// Bytes currently resident in this worker's address space.
    pub fn resident_bytes(&self) -> u64 {
        self.privlib.memory().resident_bytes()
    }

    /// Releases every warm pooled PD and accounts the release on the
    /// memory ledger via a `PoolEvicted` event — the hook the cluster
    /// calls when it retires or drains this worker, so a retired slot's
    /// warm pool never leaks. Claimed PDs stay with their in-flight
    /// invocations (their own teardown settles them). Returns
    /// `(pds, bytes)` released.
    pub fn release_warm_pool(&mut self) -> (u64, u64) {
        let drained = self.pd_pool.drain();
        if drained.is_empty() {
            return (0, 0);
        }
        let pds = drained.len() as u64;
        let bytes = self.release_pooled(CoreId(0), drained);
        self.emit(LifecycleEvent::PoolEvicted { pds, bytes });
        (pds, bytes)
    }

    /// Drains the terminal notices accumulated for cluster-tagged
    /// requests since the last call.
    pub fn take_notices(&mut self) -> Vec<WorkerNotice> {
        self.bus.take_notices()
    }

    /// FNV-1a hash over the whole lifecycle-event stream so far. Two runs
    /// with the same seed and inputs produce the same hash, whatever mix
    /// of [`run`](Self::run) and [`step`](Self::step) drove them — the
    /// golden-trace equivalence tests key on this.
    pub fn trace_hash(&self) -> u64 {
        self.bus.trace_hash()
    }

    /// Number of lifecycle events published so far (the ring may hold
    /// fewer — it keeps the most recent [`TRACE_CAPACITY`]).
    pub fn trace_len(&self) -> u64 {
        self.bus.trace_len()
    }

    /// Drains the buffered tail of the lifecycle-event trace (the ring
    /// keeps the most recent [`TRACE_CAPACITY`] events).
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.bus.take_trace()
    }

    /// Request rows still live in the lifecycle engine (0 after a drained
    /// run).
    pub fn live_requests(&self) -> usize {
        self.lifecycle.len()
    }

    /// The simulated machine (post-run hardware counters).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// PrivLib (post-run operation accounting).
    pub fn privlib(&self) -> &PrivLib {
        &self.privlib
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Invocation records still live in the slab (0 after a drained run —
    /// the leak-freedom checks key on this).
    pub fn live_invocations(&self) -> usize {
        self.slab.len()
    }

    /// The brownout level currently in force.
    pub fn brownout(&self) -> BrownoutLevel {
        self.admission.brownout()
    }

    /// Imposes a brownout level (the cluster autoscaler's graceful-
    /// degradation call). A no-op when the level is already in force, so
    /// the dispatcher can safely re-impose the fleet level after a crash
    /// recovery without polluting the journal or trace. Level changes go
    /// through the bus like every other lifecycle event: journaled,
    /// counted, and folded into the trace hash.
    pub fn set_brownout(&mut self, at: SimTime, level: BrownoutLevel) {
        if level == self.admission.brownout() {
            return;
        }
        self.admission.set_brownout(level);
        self.emit(LifecycleEvent::BrownoutChanged { level, at });
    }

    /// Pre-fills the sanitized-PD pools with up to `per_function` pristine
    /// PDs per deployed function — the Groundhog-style warm-pool fill a
    /// freshly scaled-up worker performs during bring-up, so its first
    /// requests take the pooled fast path instead of paying full PD
    /// construction. A no-op unless snapshot sanitization is enabled.
    /// Construction costs fall outside the measurement window (bring-up
    /// happens before the worker joins the routing set), and the fill
    /// stops early if the PD space runs out.
    pub fn prefill_pd_pools(&mut self, per_function: usize) {
        if !self.cfg.sanitize || per_function == 0 {
            return;
        }
        let core = CoreId(0);
        let now = self.queue.now();
        'fill: for fi in 0..self.registry.len() {
            let func = FunctionId(fi as u32);
            let spec_stack = self.registry.spec(func).stack() + self.registry.spec(func).heap();
            let code_va = self.code_vmas[fi];
            while self.pd_pool.pooled_for(func) < per_function {
                let Ok((pd, _)) = self.privlib.cget(&mut self.machine, core) else {
                    break 'fill;
                };
                let (stackheap, _) = self
                    .privlib
                    .mmap(&mut self.machine, core, spec_stack, Perm::RW, pd)
                    .expect("prefill stack/heap allocation");
                self.privlib
                    .pcopy(
                        &mut self.machine,
                        core,
                        code_va,
                        PdId::RUNTIME,
                        pd,
                        Perm::RX,
                    )
                    .expect("prefill code grant");
                let snapshot = self.privlib.snapshot_pd(pd);
                self.pd_pool.admit(
                    func,
                    PooledPd {
                        pd,
                        stackheap,
                        snapshot,
                        bytes: Self::chunk_bytes(spec_stack),
                        warmed_at: now,
                        last_used: now,
                        uses: 0,
                    },
                );
            }
        }
    }

    /// Size-class chunk bytes a `len`-byte allocation actually occupies
    /// (what the ledger and pool account in).
    fn chunk_bytes(len: u64) -> u64 {
        SizeClass::for_len(len)
            .expect("spec stack/heap fits a size class")
            .bytes()
    }

    // ------------------------------------------------------------------
    // Wake plumbing
    // ------------------------------------------------------------------

    fn wake_orch(&mut self, i: usize, at: SimTime) {
        let o = &mut self.orchs[i];
        if !o.scheduled {
            o.scheduled = true;
            let t = at.max(o.next_free);
            self.queue.push(t, Event::OrchWake(i));
        }
    }

    fn wake_exec(&mut self, e: usize, at: SimTime) {
        let x = &mut self.execs[e];
        if !x.scheduled {
            x.scheduled = true;
            let t = at.max(x.next_free);
            self.queue.push(t, Event::ExecWake(e));
        }
    }

    // ------------------------------------------------------------------
    // Orchestrator side (§3.3)
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, t: SimTime, req: u64, func: FunctionId, bytes: u64, tag: u64) {
        self.admit(t, req, func, bytes, t, 0, tag);
    }

    /// Admission control + enqueue for external requests (fresh arrivals
    /// and backoff retries alike). When the target orchestrator's external
    /// queue exceeds the shed bound, the request is dropped at the door —
    /// graceful degradation instead of unbounded queueing collapse.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &mut self,
        t: SimTime,
        req: u64,
        func: FunctionId,
        bytes: u64,
        arrival: SimTime,
        attempt: u32,
        tag: u64,
    ) {
        let orch = self.admission.route();
        if self.admission.should_shed(self.orchs[orch].external.len()) {
            let measured = self.measuring();
            self.emit(LifecycleEvent::Shed {
                req,
                func,
                tag,
                at: t,
                measured,
            });
            return;
        }
        let mut inv = Invocation::new(
            func,
            Origin::External { orch, arrival },
            ArgBuf::new(0, bytes.max(64)),
            t,
        );
        inv.attempt = attempt;
        inv.tag = tag;
        inv.req = req;
        let id = self.slab.insert(inv);
        self.emit(LifecycleEvent::Admitted {
            req,
            id,
            func,
            bytes,
            arrival,
            attempt,
            tag,
            orch,
        });
        self.orchs[orch].external.push_back(id);
        self.wake_orch(orch, t);
    }

    fn on_orch_wake(&mut self, t: SimTime, i: usize) {
        self.orchs[i].scheduled = false;
        let Some((inv_id, is_internal)) = self.orchs[i].next_request(self.admission.window())
        else {
            return;
        };
        let core = self.orchs[i].core;
        let mut cost = SimDuration::ZERO;

        if is_internal {
            // Dequeue from the shared-memory inbox.
            cost += self.machine.atomic_rmw(core, self.orchs[i].inbox_line);
        } else if self.slab.get(inv_id).argbuf.va() == 0 {
            // First touch of this external request: network ingest, ArgBuf
            // allocation, payload copy-in.
            cost += self.machine.work(self.cfg.ingest_work_ns);
            let bytes = self.slab.get(inv_id).argbuf.len();
            let (va, c) = self
                .privlib
                .mmap(&mut self.machine, core, bytes, Perm::RW, PdId::RUNTIME)
                .expect("external ArgBuf allocation");
            cost += c;
            cost += self.machine.write(core, va, bytes);
            self.slab.get_mut(inv_id).argbuf = ArgBuf::new(va, bytes);
            let req = self.slab.get(inv_id).req;
            self.emit(LifecycleEvent::ArgBufGranted {
                req,
                id: inv_id,
                va,
                bytes,
            });
        }

        // JBSQ: read every managed executor's queue depth, pick the
        // shallowest (§3.3). Loads to different executors overlap up to
        // the core's MLP.
        let group = self.orchs[i].group.clone();
        let mlp = self.machine.config().mlp as u64;
        let mut sum = SimDuration::ZERO;
        let mut worst = SimDuration::ZERO;
        let mut best: Option<usize> = None;
        let mut best_depth = usize::MAX;
        for e in group {
            let lat = self.machine.read(core, self.execs[e].queue_line, 8);
            sum += lat;
            worst = worst.max(lat);
            let depth = self.execs[e].observed_depth(t);
            if depth < best_depth {
                best_depth = depth;
                best = Some(e);
            }
        }
        let scan = worst.max(sum / mlp)
            + self
                .machine
                .work(self.cfg.scan_work_ns * self.orchs[i].group.len() as f64);
        cost += scan;

        let target = best.filter(|_| best_depth < self.cfg.queue_bound);
        match target {
            None => {
                // Every queue at the JBSQ bound. Internal requests that
                // cannot be served locally may spill to a peer worker
                // server over the network (§3.3).
                let spill = self
                    .cfg
                    .spill
                    .filter(|s| is_internal && self.orchs[i].internal.len() >= s.backlog_threshold);
                if let Some(spill) = spill {
                    // Serialize the ArgBuf onto the wire and schedule the
                    // remote completion: RTT plus the peer's execution of
                    // the whole function tree.
                    let bytes = self.slab.get(inv_id).argbuf.len();
                    cost += self.machine.work(0.1 * bytes as f64 / 10.0);
                    let remote =
                        self.remote_service_ns(self.slab.get(inv_id).func) * spill.remote_slowdown;
                    let done = t
                        + cost
                        + SimDuration::from_ns_f64(spill.network_rtt_us * 1_000.0 + remote);
                    self.emit(LifecycleEvent::Spilled);
                    self.orchs[i].next_free = t + cost;
                    self.queue.push(done, Event::RemoteComplete(inv_id));
                    if self.orchs[i].has_work() {
                        let at = self.orchs[i].next_free;
                        self.wake_orch(i, at);
                    }
                    return;
                }
                // Otherwise requeue and retry shortly.
                if is_internal {
                    self.orchs[i].internal.push_front(inv_id);
                } else {
                    self.orchs[i].external.push_front(inv_id);
                }
                self.orchs[i].next_free = t + cost;
                self.orchs[i].scheduled = true;
                self.queue.push(t + cost + FULL_RETRY, Event::OrchWake(i));
            }
            Some(e) => {
                // Push the request into the executor's queue line.
                cost += self.machine.write(core, self.execs[e].queue_line, 64);
                self.execs[e].queue.push_back(inv_id);
                let done = t + cost;
                {
                    let inv = self.slab.get_mut(inv_id);
                    inv.executor = e;
                    inv.enqueued_at = done;
                    inv.breakdown.dispatch += cost;
                }
                if !is_internal {
                    self.orchs[i].in_flight += 1;
                    let req = self.slab.get(inv_id).req;
                    self.emit(LifecycleEvent::Dispatched {
                        req,
                        id: inv_id,
                        executor: e,
                    });
                }
                self.orchs[i].dispatch_ns.record(cost.as_ns_f64());
                self.orchs[i].next_free = done;
                self.wake_exec(e, done);
                if self.orchs[i].has_work() {
                    let at = self.orchs[i].next_free;
                    self.wake_orch(i, at);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Executor side (§3.4, Figure 4)
    // ------------------------------------------------------------------

    fn on_exec_wake(&mut self, t: SimTime, e: usize) {
        self.execs[e].scheduled = false;
        if let Some(id) = self.execs[e].ready.pop_front() {
            self.resume(t, e, id);
        } else if let Some(id) = self.execs[e].queue.pop_front() {
            self.start(t, e, id);
        } else {
            return;
        }
        if self.execs[e].has_work() {
            let at = self.execs[e].next_free;
            self.wake_exec(e, at);
        }
    }

    /// Figure 4's "Initialize PD" half: pop, create PD, allocate private
    /// stack/heap, grant code, transfer the ArgBuf, `ccall` in.
    fn start(&mut self, t: SimTime, e: usize, id: InvocationId) {
        let core = self.execs[e].core;
        let mut exec = SimDuration::ZERO;
        let mut iso = SimDuration::ZERO;

        // Pop cost: the queue line update is what invalidates the
        // orchestrator's cached depth.
        exec += self.machine.work(self.cfg.pickup_work_ns);
        exec += self.machine.atomic_rmw(core, self.execs[e].queue_line);

        let (func, argbuf) = {
            let inv = self.slab.get_mut(id);
            inv.phase = Phase::Running;
            inv.started_at = t;
            (inv.func, inv.argbuf)
        };
        // Draw this execution's injection schedule (retries draw afresh) and
        // arm the deadline clock.
        let ops_len = self.registry.spec(func).ops().len();
        let plan = match &mut self.injector {
            Some(inj) => inj.plan(ops_len),
            None => InjectionPlan::CLEAN,
        };
        let deadline = self.admission.deadline_for(t);
        {
            let inv = self.slab.get_mut(id);
            inv.plan = plan;
            inv.deadline = deadline;
        }
        let spec_stack = self.registry.spec(func).stack() + self.registry.spec(func).heap();
        let code_va = self.code_vmas[func.0 as usize];

        // Snapshot sanitization keeps a pool of PDs whose pristine layout
        // (code grant + stack/heap) survived the previous invocation; a
        // pooled PD skips cget, the stack/heap mmap, and the code pcopy.
        let pooled = if self.cfg.sanitize {
            self.pd_pool.claim(func, t)
        } else {
            None
        };
        let (pd, stackheap) = match pooled {
            Some((pd, stackheap, snapshot)) => {
                // Only the per-invocation steps remain: ArgBuf hand-over
                // and entry, two gated transfers instead of five.
                iso += self
                    .privlib
                    .pmove(
                        &mut self.machine,
                        core,
                        argbuf.va(),
                        PdId::RUNTIME,
                        pd,
                        Perm::RW,
                    )
                    .expect("ArgBuf transfer");
                iso += self
                    .privlib
                    .ccall(&mut self.machine, core, pd)
                    .expect("ccall");
                for _ in 0..2 {
                    iso += self.privlib_round_trip(core, pd, code_va);
                }
                iso += self.translate_fetch(core, pd, code_va);
                iso += self.translate_access(core, pd, stackheap, Perm::RW);
                iso += self.translate_access(core, pd, argbuf.va(), Perm::RW);
                self.slab.get_mut(id).pd_snapshot = Some(snapshot);
                self.emit(LifecycleEvent::PdSetup {
                    pooled: true,
                    ns: (exec + iso).as_ns_f64(),
                });
                (pd, stackheap)
            }
            None => {
                // PD creation + private stack/heap (one VMA covering both).
                let (pd, c) = self
                    .privlib
                    .cget(&mut self.machine, core)
                    .expect("PD pool sized for the admission window");
                iso += c;
                // Memory management (also paid by Jord_NI) counts as exec;
                // only the isolation mechanism itself (PD ops, permission
                // transfers, walks) counts as isolation overhead.
                let (stackheap, c) = self
                    .privlib
                    .mmap(&mut self.machine, core, spec_stack, Perm::RW, pd)
                    .expect("stack/heap allocation");
                exec += c;
                // Make the function code accessible to the PD …
                iso += self
                    .privlib
                    .pcopy(
                        &mut self.machine,
                        core,
                        code_va,
                        PdId::RUNTIME,
                        pd,
                        Perm::RX,
                    )
                    .expect("code grant");
                // The pristine layout — code grant + stack/heap, before any
                // per-invocation grants — is what sanitization restores to.
                if self.cfg.sanitize {
                    let snapshot = self.privlib.snapshot_pd(pd);
                    self.slab.get_mut(id).pd_snapshot = Some(snapshot);
                }
                // … and hand over the ArgBuf (zero-copy: one VTE write).
                iso += self
                    .privlib
                    .pmove(
                        &mut self.machine,
                        core,
                        argbuf.va(),
                        PdId::RUNTIME,
                        pd,
                        Perm::RW,
                    )
                    .expect("ArgBuf transfer");
                // Enter the PD.
                iso += self
                    .privlib
                    .ccall(&mut self.machine, core, pd)
                    .expect("ccall");
                // First touches: every PrivLib API in the setup sequence
                // (cget, mmap, pcopy, pmove, ccall) is a gated control
                // transfer — one PrivLib-code fetch plus one function-code
                // refetch each — followed by the function's stack and
                // ArgBuf D-VLB touches.
                for _ in 0..5 {
                    iso += self.privlib_round_trip(core, pd, code_va);
                }
                iso += self.translate_fetch(core, pd, code_va);
                iso += self.translate_access(core, pd, stackheap, Perm::RW);
                iso += self.translate_access(core, pd, argbuf.va(), Perm::RW);
                if self.cfg.sanitize {
                    self.emit(LifecycleEvent::PdSetup {
                        pooled: false,
                        ns: (exec + iso).as_ns_f64(),
                    });
                }
                (pd, stackheap)
            }
        };
        if matches!(self.slab.get(id).origin, Origin::External { .. }) {
            let req = self.slab.get(id).req;
            self.emit(LifecycleEvent::PdCreated { req, id, pd: pd.0 });
        }

        {
            let inv = self.slab.get_mut(id);
            inv.pd = pd;
            inv.pd_active = true;
            inv.stackheap = stackheap;
            inv.breakdown.isolation += iso;
            inv.breakdown.exec += exec;
        }
        self.run_segment(t, exec + iso, e, id);
    }

    fn resume(&mut self, t: SimTime, e: usize, id: InvocationId) {
        // A synchronous child faulted while we were suspended: the failure
        // propagates — this continuation aborts instead of running on with a
        // missing result (§ nested-call error propagation).
        if self.slab.get(id).child_failed {
            self.abort(t, SimDuration::ZERO, e, id, AbortCause::ChildFailed);
            return;
        }
        let core = self.execs[e].core;
        let pd = self.slab.get(id).pd;
        let mut iso = SimDuration::ZERO;
        let mut exec = SimDuration::ZERO;
        // `center` back into the suspended continuation (through PrivLib's
        // gate, then the function's code — two I-VLB lookups).
        iso += self
            .privlib
            .center(&mut self.machine, core, pd)
            .expect("resume into live PD");
        let code_va = self.code_vmas[self.slab.get(id).func.0 as usize];
        iso += self.privlib_round_trip(core, pd, code_va);
        // Consume and free the finished children's ArgBufs.
        let pending = std::mem::take(&mut self.slab.get_mut(id).pending_free);
        for (va, len) in pending {
            exec += self.bulk_translate(core, pd, va, len, Perm::READ, 3);
            exec += self.machine.read(core, va, len);
            exec += self
                .privlib
                .munmap(&mut self.machine, core, va, PdId::RUNTIME)
                .expect("child ArgBuf free");
        }
        {
            let inv = self.slab.get_mut(id);
            inv.phase = Phase::Running;
            inv.breakdown.isolation += iso;
            inv.breakdown.exec += exec;
        }
        self.run_segment(t, iso + exec, e, id);
    }

    /// Interprets ops from the continuation's pc until it suspends or
    /// finishes; `offset` is time already consumed in this action.
    fn run_segment(&mut self, t: SimTime, offset: SimDuration, e: usize, id: InvocationId) {
        let core = self.execs[e].core;
        let mut acc = offset;
        loop {
            let (func, pc, pd) = {
                let inv = self.slab.get(id);
                (inv.func, inv.pc, inv.pd)
            };
            // Deadline enforcement: a runaway (or just unlucky) invocation
            // that blows its budget is killed and torn down like any fault.
            if let Some(dl) = self.slab.get(id).deadline {
                if t + acc > dl {
                    self.abort(t, acc, e, id, AbortCause::Timeout);
                    return;
                }
            }
            // Scheduled misbehavior: act out the planned bad access on the
            // real machine. Under full Jord the hardware raises a fault and
            // we abort; under bypassed isolation (Jord_NI) nothing trips and
            // the invocation barrels on — the insecurity is the point.
            if let Some(kind) = self.slab.get(id).plan.faults_at(pc) {
                if let Some(fault) = self.misbehave(core, pd, func, kind) {
                    self.abort(t, acc, e, id, AbortCause::Fault(fault.kind()));
                    return;
                }
            }
            let op = self.registry.spec(func).ops().get(pc).cloned();
            match op {
                None => {
                    self.finish(t, acc, e, id);
                    return;
                }
                Some(FuncOp::Compute(dist)) => {
                    // Compute phases run out of the private stack/heap; the
                    // D-VLB must hold its translation alongside the ArgBufs
                    // the surrounding ops touch (the Figure 12 D-VLB
                    // pressure). A hit charges nothing.
                    let stackheap = self.slab.get(id).stackheap;
                    let walk = if stackheap != 0 {
                        self.translate_access(core, pd, stackheap, Perm::RW)
                    } else {
                        SimDuration::ZERO
                    };
                    let mut d = dist.sample(&mut self.rng);
                    // A planned runaway spins far past its nominal compute
                    // budget; only the deadline (checked at the next op) can
                    // reclaim the core.
                    if self.slab.get(id).plan.runaway {
                        let factor = self.cfg.inject.map(|i| i.runaway_factor).unwrap_or(1.0);
                        d = SimDuration::from_ns_f64(d.as_ns_f64() * factor);
                    }
                    acc += walk + d;
                    let inv = self.slab.get_mut(id);
                    inv.breakdown.isolation += walk;
                    inv.breakdown.exec += d;
                    inv.pc += 1;
                }
                Some(FuncOp::ReadInput) => {
                    let argbuf = self.slab.get(id).argbuf;
                    let walk =
                        self.bulk_translate(core, pd, argbuf.va(), argbuf.len(), Perm::READ, 2);
                    let d = self.machine.read(core, argbuf.va(), argbuf.len());
                    acc += walk + d;
                    let inv = self.slab.get_mut(id);
                    inv.breakdown.isolation += walk;
                    inv.breakdown.exec += d;
                    inv.pc += 1;
                }
                Some(FuncOp::WriteOutput) => {
                    let argbuf = self.slab.get(id).argbuf;
                    let walk =
                        self.bulk_translate(core, pd, argbuf.va(), argbuf.len(), Perm::WRITE, 2);
                    let d = self.machine.write(core, argbuf.va(), argbuf.len());
                    acc += walk + d;
                    let inv = self.slab.get_mut(id);
                    inv.breakdown.isolation += walk;
                    inv.breakdown.exec += d;
                    inv.pc += 1;
                }
                Some(FuncOp::MmapTemp { bytes }) => {
                    let code_va = self.code_vmas[func.0 as usize];
                    let trans = self.privlib_round_trip(core, pd, code_va);
                    let (gate, gate_cost) = self
                        .privlib
                        .try_enter(&self.machine, core, true)
                        .expect("gated entry");
                    let _ = gate;
                    let gate_cost = gate_cost + trans;
                    let (va, c) = self
                        .privlib
                        .mmap(&mut self.machine, core, bytes, Perm::RW, pd)
                        .expect("temp mmap");
                    acc += gate_cost + c;
                    let inv = self.slab.get_mut(id);
                    inv.breakdown.isolation += gate_cost;
                    inv.breakdown.exec += c;
                    inv.temps.push(va);
                    inv.pc += 1;
                }
                Some(FuncOp::MunmapTemp) => {
                    let va = self.slab.get_mut(id).temps.pop();
                    let mut gate = SimDuration::ZERO;
                    let mut mem = SimDuration::ZERO;
                    if let Some(va) = va {
                        let code_va = self.code_vmas[func.0 as usize];
                        gate += self.privlib_round_trip(core, pd, code_va);
                        let (_, gate_cost) = self
                            .privlib
                            .try_enter(&self.machine, core, true)
                            .expect("gated entry");
                        gate += gate_cost;
                        mem += self
                            .privlib
                            .munmap(&mut self.machine, core, va, pd)
                            .expect("temp munmap");
                    }
                    acc += gate + mem;
                    let inv = self.slab.get_mut(id);
                    inv.breakdown.isolation += gate;
                    inv.breakdown.exec += mem;
                    inv.pc += 1;
                }
                Some(FuncOp::Invoke {
                    target,
                    arg_bytes,
                    asynchronous,
                }) => {
                    let mut iso = SimDuration::ZERO;
                    let mut exec = SimDuration::ZERO;
                    // jord::argBuf<T>: allocate the child's ArgBuf (owned
                    // by the runtime, readable/writable by this PD).
                    // Three gated PrivLib calls: argBuf mmap, pcopy, and
                    // the call/async submission itself.
                    let code_va = self.code_vmas[func.0 as usize];
                    for _ in 0..3 {
                        iso += self.privlib_round_trip(core, pd, code_va);
                    }
                    let (gate, gate_cost) = self
                        .privlib
                        .try_enter(&self.machine, core, true)
                        .expect("gated entry");
                    let _ = gate;
                    iso += gate_cost;
                    let bytes = arg_bytes.max(64);
                    let (va, c) = self
                        .privlib
                        .mmap(&mut self.machine, core, bytes, Perm::RW, PdId::RUNTIME)
                        .expect("child ArgBuf");
                    exec += c;
                    iso += self
                        .privlib
                        .pcopy(&mut self.machine, core, va, PdId::RUNTIME, pd, Perm::RW)
                        .expect("ArgBuf share with caller");
                    // Populate the arguments (stack + own ArgBuf + the
                    // child's ArgBuf are all live in this loop).
                    exec += self.bulk_translate(core, pd, va, bytes, Perm::WRITE, 3);
                    exec += self.machine.write(core, va, bytes);

                    // Create the internal request and push it to our
                    // orchestrator's inbox.
                    let child = self.slab.insert(Invocation::new(
                        target,
                        Origin::Internal {
                            parent: id,
                            synchronous: !asynchronous,
                        },
                        ArgBuf::new(va, bytes),
                        t + acc,
                    ));
                    let orch = self.execs[e].orch;
                    exec += self.machine.work(INTERNAL_PUSH_NS);
                    exec += self.machine.write(core, self.orchs[orch].inbox_line, 64);
                    acc += iso + exec;
                    self.orchs[orch].internal.push_back(child);
                    self.wake_orch(orch, t + acc);

                    {
                        let inv = self.slab.get_mut(id);
                        inv.breakdown.isolation += iso;
                        inv.breakdown.exec += exec;
                        inv.pc += 1;
                    }
                    if asynchronous {
                        self.slab.get_mut(id).outstanding += 1;
                    } else {
                        // jord::call: suspend until the child completes.
                        let cex = self.privlib.cexit(&mut self.machine, core);
                        acc += cex;
                        let inv = self.slab.get_mut(id);
                        inv.breakdown.isolation += cex;
                        inv.blocked_on = Some(child);
                        inv.phase = Phase::Suspended;
                        self.execs[e].next_free = t + acc;
                        return;
                    }
                }
                Some(FuncOp::WaitAll) => {
                    let outstanding = self.slab.get(id).outstanding;
                    if outstanding == 0 {
                        self.slab.get_mut(id).pc += 1;
                    } else {
                        let cex = self.privlib.cexit(&mut self.machine, core);
                        acc += cex;
                        let inv = self.slab.get_mut(id);
                        inv.breakdown.isolation += cex;
                        inv.waiting_all = true;
                        inv.phase = Phase::Suspended;
                        self.execs[e].next_free = t + acc;
                        return;
                    }
                }
            }
        }
    }

    /// Figure 4's "Destroy PD" half plus completion notification.
    fn finish(&mut self, t: SimTime, offset: SimDuration, e: usize, id: InvocationId) {
        let core = self.execs[e].core;
        let mut acc = offset;
        let mut iso = SimDuration::ZERO;
        let (pd, argbuf, stackheap, func) = {
            let inv = self.slab.get(id);
            (inv.pd, inv.argbuf, inv.stackheap, inv.func)
        };
        let code_va = self.code_vmas[func.0 as usize];

        let mut mem = SimDuration::ZERO;
        // Free any leaked temps and unconsumed child buffers.
        let (temps, pending) = {
            let inv = self.slab.get_mut(id);
            (
                std::mem::take(&mut inv.temps),
                std::mem::take(&mut inv.pending_free),
            )
        };
        let snapshot = if self.cfg.sanitize {
            self.slab.get_mut(id).pd_snapshot.take()
        } else {
            None
        };
        match snapshot {
            Some(snapshot) => {
                // Sanitize-and-pool (Groundhog): cexit, return the ArgBuf,
                // free scratch explicitly (under bypassed isolation the
                // snapshot diff cannot see per-invocation grants), then
                // verify-and-repair the pristine layout. The code grant,
                // stack/heap, and the PD itself survive for the next
                // invocation of this function.
                for _ in 0..3 {
                    iso += self.privlib_round_trip(core, pd, code_va);
                }
                iso += self.privlib.cexit(&mut self.machine, core);
                iso += self
                    .privlib
                    .pmove(
                        &mut self.machine,
                        core,
                        argbuf.va(),
                        pd,
                        PdId::RUNTIME,
                        Perm::RW,
                    )
                    .expect("ArgBuf return");
                for va in temps {
                    mem += self
                        .privlib
                        .munmap(&mut self.machine, core, va, PdId::RUNTIME)
                        .expect("temp cleanup");
                }
                for (va, _) in pending {
                    mem += self
                        .privlib
                        .munmap(&mut self.machine, core, va, PdId::RUNTIME)
                        .expect("child ArgBuf cleanup");
                }
                let (scan, repairs) = self
                    .privlib
                    .sanitize_pd(&mut self.machine, core, &snapshot)
                    .expect("sanitize scan of a live PD");
                iso += scan;
                self.emit(LifecycleEvent::PdSanitized {
                    repairs: repairs as u64,
                });
                // Back to the pool: a claimed PD returns warm (its
                // working-set record was parked in the claim registry); a
                // freshly built one is admitted with a new record.
                if self.pd_pool.claimed_entry(pd).is_some() {
                    self.pd_pool.release(pd, t);
                } else {
                    let spec_stack =
                        self.registry.spec(func).stack() + self.registry.spec(func).heap();
                    self.pd_pool.admit(
                        func,
                        PooledPd {
                            pd,
                            stackheap,
                            snapshot,
                            bytes: Self::chunk_bytes(spec_stack),
                            warmed_at: t,
                            last_used: t,
                            uses: 1,
                        },
                    );
                }
            }
            None => {
                // The teardown sequence (cexit, pmove, revoke, munmap,
                // cput) is five more gated transfers through PrivLib code.
                for _ in 0..5 {
                    iso += self.privlib_round_trip(core, pd, code_va);
                }
                // Control returns to the executor.
                iso += self.privlib.cexit(&mut self.machine, core);
                // Transfer the ArgBuf back, revoke code, free stack/heap,
                // drop PD.
                iso += self
                    .privlib
                    .pmove(
                        &mut self.machine,
                        core,
                        argbuf.va(),
                        pd,
                        PdId::RUNTIME,
                        Perm::RW,
                    )
                    .expect("ArgBuf return");
                iso += self
                    .privlib
                    .mprotect(&mut self.machine, core, code_va, Perm::NONE, pd)
                    .expect("code revoke");
                mem += self
                    .privlib
                    .munmap(&mut self.machine, core, stackheap, PdId::RUNTIME)
                    .expect("stack/heap free");
                for va in temps {
                    mem += self
                        .privlib
                        .munmap(&mut self.machine, core, va, PdId::RUNTIME)
                        .expect("temp cleanup");
                }
                for (va, _) in pending {
                    mem += self
                        .privlib
                        .munmap(&mut self.machine, core, va, PdId::RUNTIME)
                        .expect("child ArgBuf cleanup");
                }
                iso += self
                    .privlib
                    .cput(&mut self.machine, core, pd)
                    .expect("PD destroy");
                // A prefilled pool can lend PDs even with sanitize off;
                // this teardown destroyed the PD, so the claim record
                // must not outlive it (no-op for freshly built PDs).
                self.pd_pool.forget(pd);
            }
        }
        acc += iso + mem;
        {
            let inv = self.slab.get_mut(id);
            inv.breakdown.isolation += iso;
            inv.breakdown.exec += mem;
        }

        // Completion notification.
        let origin = self.slab.get(id).origin;
        match origin {
            Origin::External { orch, arrival } => {
                let mut d = self.machine.work(NOTIFY_NS);
                d += self.machine.write(core, self.orchs[orch].resp_line, 64);
                // Free the request ArgBuf (memory management → exec).
                d += self
                    .privlib
                    .munmap(&mut self.machine, core, argbuf.va(), PdId::RUNTIME)
                    .expect("request ArgBuf free");
                acc += d;
                self.slab.get_mut(id).breakdown.exec += d;
                let done = t + acc;
                let measured = self.measuring();
                let (req, tag) = {
                    let inv = self.slab.get(id);
                    (inv.req, inv.tag)
                };
                self.emit(LifecycleEvent::Completed {
                    req,
                    id,
                    tag,
                    at: done,
                    latency: done.saturating_since(arrival),
                    measured,
                });
                self.orchs[orch].in_flight -= 1;
                if self.orchs[orch].has_work() {
                    self.wake_orch(orch, done);
                }
            }
            Origin::Internal { parent, .. } => {
                let done = t + acc;
                // Hand the result buffer to the parent and maybe unblock it.
                let extra = self.deliver_child_result(done, core, parent, id, argbuf, false);
                if !extra.is_zero() {
                    acc += extra;
                    self.slab.get_mut(id).breakdown.exec += extra;
                }
            }
        }

        // Record and retire. `measured` is recomputed here: a Completed
        // event above may have crossed the warmup boundary, and the
        // invocation record follows the post-crossing window.
        let done = t + acc;
        let (service, breakdown) = {
            let inv = self.slab.get_mut(id);
            inv.phase = Phase::Done;
            (done.saturating_since(inv.enqueued_at), inv.breakdown)
        };
        let measured = self.measuring();
        self.emit(LifecycleEvent::InvocationFinished {
            func,
            service,
            breakdown,
            measured,
        });
        self.slab.remove(id);
        self.execs[e].next_free = done;
        // Teardown is when pool and table state change, so the governor
        // runs its reclamation pass here.
        self.govern(done, core);
    }

    /// Mean execution time of `func`'s whole invocation tree (the peer is
    /// assumed unloaded; a small per-invocation overhead stands in for its
    /// own dispatch/isolation).
    fn remote_service_ns(&self, func: FunctionId) -> f64 {
        const PER_INVOCATION_OVERHEAD_NS: f64 = 400.0;
        let mut total = self.registry.spec(func).mean_compute_ns() + PER_INVOCATION_OVERHEAD_NS;
        for op in self.registry.spec(func).ops() {
            if let FuncOp::Invoke { target, .. } = op {
                total += self.remote_service_ns(*target);
            }
        }
        total
    }

    /// A spilled invocation finished on the peer: free its ArgBuf and
    /// notify the parent exactly as a local completion would.
    fn on_remote_complete(&mut self, t: SimTime, id: InvocationId) {
        let (func, argbuf, origin, enq) = {
            let inv = self.slab.get(id);
            (inv.func, inv.argbuf, inv.origin, inv.enqueued_at)
        };
        match origin {
            Origin::External { .. } => {
                unreachable!("only internal requests spill (§3.3)")
            }
            Origin::Internal { parent, .. } => {
                let core = self.execs[self.slab.get(parent).executor].core;
                self.deliver_child_result(t, core, parent, id, argbuf, false);
            }
        }
        let measured = self.measuring();
        let breakdown = self.slab.get(id).breakdown;
        self.emit(LifecycleEvent::InvocationFinished {
            func,
            service: t.saturating_since(enq),
            breakdown,
            measured,
        });
        self.slab.remove(id);
    }

    // ------------------------------------------------------------------
    // Fault containment (§3.1, §4.3; Figure 4 run in reverse)
    // ------------------------------------------------------------------

    /// Acts out the planned misbehavior of `kind` on the real machine and
    /// returns the hardware fault it raised — or `None` when the isolation
    /// variant failed to catch it (Jord_NI lets wild accesses through;
    /// only the gate decoder and CSR checks are always armed).
    fn misbehave(
        &mut self,
        core: CoreId,
        pd: PdId,
        func: FunctionId,
        kind: FaultKind,
    ) -> Option<Fault> {
        let result: Result<(), PrivError> = match kind {
            // A stray pointer dereference: VA 0x10 carries no valid VMA
            // tag, so the walk cannot even decode it.
            FaultKind::Unmapped => self
                .privlib
                .access(&mut self.machine, core, pd, WILD_VA, Perm::READ)
                .map(|_| ()),
            // A store through the function's own code VMA (held RX).
            FaultKind::Permission => {
                let code_va = self.code_vmas[func.0 as usize];
                self.privlib
                    .access(&mut self.machine, core, pd, code_va, Perm::WRITE)
                    .map(|_| ())
            }
            // A data read of PrivLib's P-bit code from unprivileged code.
            FaultKind::Privilege => {
                let privlib_code = self.privlib_code;
                self.privlib
                    .access(&mut self.machine, core, pd, privlib_code, Perm::READ)
                    .map(|_| ())
            }
            // A jump past the `uatg` gate into privileged code.
            FaultKind::MissingGate => self
                .privlib
                .try_enter(&self.machine, core, false)
                .map(|_| ()),
            // An unprivileged `csrr` of uatp (a read, so the machine state
            // cannot be corrupted even if it slipped through).
            FaultKind::CsrAccess => self
                .machine
                .csr_read(core, Csr::Uatp, false)
                .map(|_| ())
                .map_err(PrivError::from),
        };
        match result {
            Err(PrivError::Fault(fault)) => Some(fault),
            Ok(()) => None, // isolation bypassed: misbehavior undetected
            Err(e) => panic!("misbehavior raised a non-fault error: {e}"),
        }
    }

    /// Figure 4's teardown run from the middle of a segment: the fault
    /// handler traps to PrivLib, which evicts the continuation, returns the
    /// ArgBuf, revokes the code grant, reclaims the stack/heap plus every
    /// temp and unconsumed child buffer, and destroys the PD. Nothing the
    /// invocation ever held survives (zero leakage).
    fn abort(
        &mut self,
        t: SimTime,
        offset: SimDuration,
        e: usize,
        id: InvocationId,
        cause: AbortCause,
    ) {
        let core = self.execs[e].core;
        let mut acc = offset;
        // A crash is not the invocation's fault: the stats sink routes it
        // to the crash counters, not the per-invocation fault ledger.
        let measured = self.measuring();
        self.emit(LifecycleEvent::Aborted { cause, measured });

        let (pd, argbuf, stackheap, func, origin) = {
            let inv = self.slab.get(id);
            (inv.pd, inv.argbuf, inv.stackheap, inv.func, inv.origin)
        };
        let code_va = self.code_vmas[func.0 as usize];
        let mut iso = SimDuration::ZERO;
        let mut mem = SimDuration::ZERO;

        // Trap, evict, and tear down: the fault handler's trip through
        // PrivLib plus the same reclamation sequence `finish` runs.
        for _ in 0..3 {
            iso += self.privlib_round_trip(core, pd, code_va);
        }
        iso += self.privlib.cexit(&mut self.machine, core);
        iso += self
            .privlib
            .pmove(
                &mut self.machine,
                core,
                argbuf.va(),
                pd,
                PdId::RUNTIME,
                Perm::RW,
            )
            .expect("ArgBuf reclaim");
        iso += self
            .privlib
            .mprotect(&mut self.machine, core, code_va, Perm::NONE, pd)
            .expect("code revoke");
        if stackheap != 0 {
            mem += self
                .privlib
                .munmap(&mut self.machine, core, stackheap, PdId::RUNTIME)
                .expect("stack/heap reclaim");
        }
        let (temps, pending) = {
            let inv = self.slab.get_mut(id);
            (
                std::mem::take(&mut inv.temps),
                std::mem::take(&mut inv.pending_free),
            )
        };
        for va in temps {
            mem += self
                .privlib
                .munmap(&mut self.machine, core, va, PdId::RUNTIME)
                .expect("temp reclaim");
        }
        for (va, _) in pending {
            mem += self
                .privlib
                .munmap(&mut self.machine, core, va, PdId::RUNTIME)
                .expect("child ArgBuf reclaim");
        }
        iso += self
            .privlib
            .cput(&mut self.machine, core, pd)
            .expect("PD destroy on abort");
        // A pool-claimed PD died with the invocation: drop its claim (a
        // no-op for freshly built PDs).
        self.pd_pool.forget(pd);
        // External request buffers are owned by this worker; internal ones
        // travel back to the parent (freed there, or below if it is gone).
        if matches!(origin, Origin::External { .. }) {
            mem += self
                .privlib
                .munmap(&mut self.machine, core, argbuf.va(), PdId::RUNTIME)
                .expect("request ArgBuf reclaim");
        }
        acc += iso + mem;

        let done = t + acc;
        let drained = {
            let inv = self.slab.get_mut(id);
            inv.phase = Phase::Faulted;
            inv.pd_active = false;
            inv.breakdown.isolation += iso;
            inv.breakdown.exec += mem;
            inv.outstanding == 0 && inv.blocked_on.is_none()
        };
        self.execs[e].next_free = done;
        if drained {
            self.conclude_failure(done, core, id);
        }
        // else: a zombie — straggler children still reference this slot;
        // the last one to report concludes the failure.
    }

    /// Settles a terminally aborted invocation once no child references it:
    /// external requests retry (with capped exponential backoff) or count
    /// as failed; internal ones propagate the failure to their parent.
    fn conclude_failure(&mut self, t: SimTime, core: CoreId, id: InvocationId) {
        let inv = self.slab.remove(id);
        if inv.crash_kill {
            // Killed by an injected crash: conclusion follows the crash
            // semantics knob, not the fault-retry policy.
            self.conclude_crashed(t, core, inv, id);
            return;
        }
        match inv.origin {
            Origin::External { orch, arrival } => {
                self.orchs[orch].in_flight -= 1;
                match self.admission.on_failure(inv.attempt) {
                    FailureDisposition::Retry { attempt, delay } => {
                        let measured = self.measuring();
                        let at = t + delay;
                        let token = self.lifecycle.alloc_token();
                        self.emit(LifecycleEvent::RetryScheduled {
                            req: inv.req,
                            id,
                            token,
                            retry: PendingRetry {
                                func: inv.func,
                                bytes: inv.argbuf.len(),
                                arrival,
                                attempt,
                                tag: inv.tag,
                                due: at,
                            },
                            kind: RetryKind::Backoff,
                            measured,
                        });
                        self.queue.push(
                            at,
                            Event::Retry {
                                req: inv.req,
                                func: inv.func,
                                bytes: inv.argbuf.len(),
                                arrival,
                                attempt,
                                token,
                                tag: inv.tag,
                            },
                        );
                    }
                    FailureDisposition::Fail => {
                        let measured = self.measuring();
                        self.emit(LifecycleEvent::Failed {
                            req: inv.req,
                            id,
                            tag: inv.tag,
                            at: t,
                            measured,
                            notify: true,
                        });
                    }
                }
                if self.orchs[orch].has_work() {
                    self.wake_orch(orch, t);
                }
            }
            Origin::Internal { parent, .. } => {
                self.deliver_child_result(t, core, parent, id, inv.argbuf, true);
            }
        }
    }

    /// Hands a finished (or faulted) child's ArgBuf to its parent and
    /// updates the parent's join state; wakes the parent when unblocked.
    /// If the parent is itself a faulted zombie, the buffer is freed on the
    /// spot and, once the last straggler reports, the parent's failure is
    /// concluded. Returns any runtime work performed here (the zombie-path
    /// munmap), charged to the caller.
    fn deliver_child_result(
        &mut self,
        t: SimTime,
        core: CoreId,
        parent: InvocationId,
        child: InvocationId,
        argbuf: ArgBuf,
        child_faulted: bool,
    ) -> SimDuration {
        let zombie = self.slab.get(parent).phase == Phase::Faulted;
        let mut cost = SimDuration::ZERO;
        if zombie {
            cost += self
                .privlib
                .munmap(&mut self.machine, core, argbuf.va(), PdId::RUNTIME)
                .expect("straggler ArgBuf reclaim");
        } else {
            let p = self.slab.get_mut(parent);
            p.pending_free.push((argbuf.va(), argbuf.len()));
            if child_faulted {
                p.child_failed = true;
            }
        }
        let (unblocked, pe) = {
            let p = self.slab.get_mut(parent);
            let unblocked = if p.blocked_on == Some(child) {
                p.blocked_on = None;
                true
            } else {
                debug_assert!(p.outstanding > 0);
                p.outstanding -= 1;
                p.waiting_all && p.outstanding == 0
            };
            if unblocked {
                p.waiting_all = false;
            }
            (unblocked, p.executor)
        };
        if unblocked && !zombie {
            self.execs[pe].ready.push_back(parent);
            self.wake_exec(pe, t);
        }
        if zombie {
            let drained = {
                let p = self.slab.get(parent);
                p.outstanding == 0 && p.blocked_on.is_none()
            };
            if drained {
                self.conclude_failure(t, core, parent);
            }
        }
        cost
    }

    /// Destroys every pooled sanitized PD (end of run): revoke the code
    /// grant, free the retained stack/heap, drop the PD. Costs fall
    /// outside the measurement window.
    fn drain_pd_pools(&mut self) {
        debug_assert_eq!(
            self.pd_pool.claimed_len(),
            0,
            "no PD claim may outlive its invocation"
        );
        let drained = self.pd_pool.drain();
        self.release_pooled(CoreId(0), drained);
    }

    /// Frees the resources behind evicted/drained pool entries: revoke
    /// the code grant, unmap the retained stack/heap, destroy the PD.
    /// Returns the stack/heap bytes handed back.
    fn release_pooled(&mut self, core: CoreId, entries: Vec<(FunctionId, PooledPd)>) -> u64 {
        let mut bytes = 0;
        for (func, entry) in entries {
            bytes += entry.bytes;
            let code_va = self.code_vmas[func.0 as usize];
            self.privlib
                .mprotect(&mut self.machine, core, code_va, Perm::NONE, entry.pd)
                .expect("pool code revoke");
            self.privlib
                .munmap(&mut self.machine, core, entry.stackheap, PdId::RUNTIME)
                .expect("pool stack/heap free");
            self.privlib
                .cput(&mut self.machine, core, entry.pd)
                .expect("pool PD destroy");
        }
        bytes
    }

    /// One governor pass at a deterministic point (invocation teardown):
    /// age/size warm-pool eviction, pressure-driven eviction of the
    /// globally coldest entries *before* the admission policy sheds a
    /// single request, VMA-table compaction once tombstones pile past the
    /// threshold, and a typed pressure-transition event whenever the
    /// ladder level changes. Reclamation work is charged to the machine
    /// off the request critical path (a background daemon in a real
    /// worker), so replay from the same state re-derives the same
    /// decisions.
    fn govern(&mut self, t: SimTime, core: CoreId) {
        let idle = self.pd_pool.evict_idle(t, &self.cfg.memory);
        let mut evicted_pds = idle.len() as u64;
        let mut evicted_bytes = self.release_pooled(core, idle);

        let mut resident = self.privlib.memory().resident_bytes();
        let mut level = self.cfg.memory.pressure(resident);
        if level >= MemoryPressure::Elevated {
            let n = if level == MemoryPressure::Critical {
                self.pd_pool.pooled() // give back the whole warm pool
            } else {
                2
            };
            let cold = self.pd_pool.evict_coldest(n);
            evicted_pds += cold.len() as u64;
            evicted_bytes += self.release_pooled(core, cold);
            resident = self.privlib.memory().resident_bytes();
            level = self.cfg.memory.pressure(resident);
        }
        if evicted_pds > 0 {
            self.emit(LifecycleEvent::PoolEvicted {
                pds: evicted_pds,
                bytes: evicted_bytes,
            });
        }

        if self.privlib.dead_slots() > self.cfg.memory.compact_dead_slots {
            let (_, released) = self.privlib.compact_tables(&mut self.machine, core);
            self.emit(LifecycleEvent::TableCompacted {
                released: released as u64,
            });
        }

        self.peak_resident = self.peak_resident.max(resident);
        if level != self.pressure {
            self.pressure = level;
            self.emit(LifecycleEvent::MemoryPressureChanged { level, resident });
        }
    }

    /// Rolls the injector's VLB-glitch die: a spurious invalidation flushes
    /// both VLBs of `core`, and the cost emerges downstream as re-walks.
    fn maybe_glitch(&mut self, core: CoreId) {
        let glitched = self.injector.as_mut().is_some_and(|inj| inj.glitch());
        if glitched {
            self.machine.vlb_flush(core);
            let measured = self.measuring();
            self.emit(LifecycleEvent::Glitched { measured });
        }
    }

    // ------------------------------------------------------------------
    // Translation helpers
    // ------------------------------------------------------------------

    fn translate_access(&mut self, core: CoreId, pd: PdId, va: Va, perm: Perm) -> SimDuration {
        self.maybe_glitch(core);
        self.privlib
            .access(&mut self.machine, core, pd, va, perm)
            .expect("runtime-issued access is always legal")
    }

    /// Data translation for a bulk access loop whose body alternates
    /// between `working_set` live VMAs (the buffer, the private stack, …).
    /// When the D-VLB holds the whole set, only the first touch can miss;
    /// when it cannot (Figure 12's 1–2-entry configurations), every
    /// iteration of the loop re-walks — the per-line amplification below.
    fn bulk_translate(
        &mut self,
        core: CoreId,
        pd: PdId,
        va: Va,
        len: u64,
        perm: Perm,
        working_set: usize,
    ) -> SimDuration {
        let walk = self.translate_access(core, pd, va, perm);
        if !walk.is_zero() && self.machine.config().dvlb_entries < working_set {
            let lines = jord_hw::types::LineAddr::span(va, len).max(1);
            return walk * lines;
        }
        walk
    }

    fn translate_fetch(&mut self, core: CoreId, pd: PdId, va: Va) -> SimDuration {
        self.maybe_glitch(core);
        self.privlib
            .fetch(&mut self.machine, core, pd, va)
            .expect("runtime-issued fetch is always legal")
    }

    /// A function → PrivLib → function control transfer: two instruction
    /// fetches on the I-VLB (the gated entry into PrivLib's global code
    /// VMA, and the return into the function's code). With ≥2 I-VLB
    /// entries both hit; with one entry every transition re-walks (the
    /// Figure 12 sensitivity).
    fn privlib_round_trip(&mut self, core: CoreId, pd: PdId, code_va: Va) -> SimDuration {
        let privlib_code = self.privlib_code;
        let enter = self
            .privlib
            .fetch_gated(&mut self.machine, core, pd, privlib_code);
        let back = self.translate_fetch(core, pd, code_va);
        enter + back
    }
}

impl std::fmt::Debug for WorkerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerServer")
            .field("variant", &self.cfg.variant)
            .field("orchestrators", &self.orchs.len())
            .field("executors", &self.execs.len())
            .field("live_invocations", &self.slab.len())
            .finish()
    }
}
