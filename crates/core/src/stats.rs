//! Run-level measurement: request latencies, function service times, and
//! the per-function breakdowns behind Figures 9–11 and 14.

use std::collections::HashMap;

use jord_hw::FaultKind;
use jord_sim::{LatencyHistogram, OnlineStats, SimDuration, SimTime};

use crate::function::FunctionId;
use crate::invocation::Breakdown;
use crate::memory::MemoryLedger;

/// Fault-handling counters: what went wrong and what the runtime did about
/// it. `PartialEq` so determinism tests can compare whole schedules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Hardware faults raised, indexed by [`FaultKind::index`].
    pub by_kind: [u64; 5],
    /// Spurious VLB glitches injected (cold-translation events, not
    /// faults; their cost shows up as extra VTW walks).
    pub glitches: u64,
    /// Invocations aborted (fault, timeout, or failed child).
    pub aborted: u64,
    /// Invocations killed by the per-invocation deadline.
    pub timeouts: u64,
    /// External requests re-dispatched after a failure.
    pub retries: u64,
    /// External requests shed at admission (queue over the shed bound).
    pub sheds: u64,
    /// External requests terminally failed (retries exhausted).
    pub failed: u64,
}

impl FaultStats {
    /// Records one raised hardware fault.
    pub fn count(&mut self, kind: FaultKind) {
        self.by_kind[kind.index()] += 1;
    }

    /// Hardware faults raised, of `kind`.
    pub fn of_kind(&self, kind: FaultKind) -> u64 {
        self.by_kind[kind.index()]
    }

    /// Total hardware faults raised across all kinds.
    pub fn total_faults(&self) -> u64 {
        self.by_kind.iter().sum()
    }
}

/// Crash-recovery counters: what the journal and the restore path did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashStats {
    /// Crashes injected (executor, orchestrator, or whole worker).
    pub crashes: u64,
    /// Checkpoints taken at journal cadence.
    pub checkpoints: u64,
    /// Journal records appended.
    pub journal_records: u64,
    /// Journal records replayed during recovery.
    pub replayed: u64,
    /// Invocations killed by a crash (resident on the crashed component).
    pub killed: u64,
    /// Killed external requests re-admitted under at-least-once semantics.
    pub readmitted: u64,
}

/// Durable-storage counters: what the framed journal's scanner, the
/// checkpoint seals, and the recovery ladder saw and did. All zero on a
/// run that never crashed (the scanner only runs at recovery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Frames whose checksum and sequence verified during recovery scans.
    pub frames_verified: u64,
    /// Frames rejected by a checksum/decode failure (corrupt interior).
    pub frames_quarantined: u64,
    /// Bytes discarded off the end of the log as a torn tail.
    pub truncated_bytes: u64,
    /// Duplicate frames (sequence regressions) dropped by the scanner.
    pub duplicates_dropped: u64,
    /// Checkpoint seals that failed verification against the log.
    pub seal_failures: u64,
    /// Recoveries that took the exact-replay rung (clean log).
    pub exact_replays: u64,
    /// Recoveries that truncated a torn tail and replayed the prefix.
    pub torn_tails: u64,
    /// Recoveries that quarantined a corrupt interior frame.
    pub quarantines: u64,
    /// Recoveries that fell back to an earlier sealed checkpoint.
    pub checkpoint_fallbacks: u64,
    /// Recoveries with no verifiable checkpoint at all: pristine reboot.
    pub pristine_reboots: u64,
    /// In-flight work demoted by a lossy rung and re-admitted
    /// (at-least-once).
    pub demoted_readmitted: u64,
    /// In-flight work demoted by a lossy rung and terminally failed
    /// (at-most-once).
    pub demoted_failed: u64,
}

impl DurabilityStats {
    /// Folds another worker's counters into this (cluster-level) copy.
    pub fn merge(&mut self, other: &DurabilityStats) {
        self.frames_verified += other.frames_verified;
        self.frames_quarantined += other.frames_quarantined;
        self.truncated_bytes += other.truncated_bytes;
        self.duplicates_dropped += other.duplicates_dropped;
        self.seal_failures += other.seal_failures;
        self.exact_replays += other.exact_replays;
        self.torn_tails += other.torn_tails;
        self.quarantines += other.quarantines;
        self.checkpoint_fallbacks += other.checkpoint_fallbacks;
        self.pristine_reboots += other.pristine_reboots;
        self.demoted_readmitted += other.demoted_readmitted;
        self.demoted_failed += other.demoted_failed;
    }

    /// Total lossy-rung recoveries (anything below exact replay).
    pub fn lossy_recoveries(&self) -> u64 {
        self.torn_tails + self.quarantines + self.checkpoint_fallbacks + self.pristine_reboots
    }
}

/// Cluster-layer failover counters: what the dispatcher's health and
/// routing machinery did to (or for) this worker, or — in the cluster-wide
/// copy — across the whole fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FailoverStats {
    /// Heartbeats the worker emitted while alive.
    pub heartbeats_sent: u64,
    /// Heartbeats dropped by the network (loss rate or partition) —
    /// *not* absent because the worker was dead.
    pub heartbeats_lost: u64,
    /// Suspect transitions (phi crossed the suspect threshold).
    pub suspects: u64,
    /// Suspicions retracted by a later heartbeat — the worker was alive
    /// all along (false positives the evict threshold never saw).
    pub false_suspects: u64,
    /// Evictions (phi crossed the confirm/evict threshold).
    pub evictions: u64,
    /// Evicted workers readmitted after consecutive delivered heartbeats.
    pub readmissions: u64,
    /// Requests failed over from a dead worker to a healthy peer.
    pub failovers: u64,
    /// Requests routed to a worker that was already dead but not yet
    /// evicted (the detection window's misrouting cost).
    pub misrouted: u64,
    /// Duplicate terminal notices for an already-settled request (a
    /// hedged or failed-over copy that could not be cancelled in time).
    pub duplicated: u64,
    /// Hedge copies dispatched for slow-tail requests.
    pub hedges: u64,
    /// Requests whose hedge copy answered first.
    pub hedge_wins: u64,
    /// Redundant copies cancelled before dispatch (first-response-wins).
    pub cancelled: u64,
    /// Queued requests re-routed off a draining worker.
    pub rebalanced: u64,
    /// Graceful drains performed.
    pub drains: u64,
    /// Requests with no terminal outcome at the end of the run. The
    /// cluster conservation invariant is
    /// `offered == completed + failed + shed`, so this must be 0 — it is
    /// reported rather than silently asserted away.
    pub lost: u64,
    /// Worst-case measured detection latency (kill → eviction), ns.
    pub detection_ns: f64,
    /// The configured confirm bound at that eviction: one heartbeat
    /// interval plus the silence needed to reach the evict threshold, ns.
    /// Detection latency below this bound means the detector fired no
    /// later than its configuration promises.
    pub confirm_bound_ns: f64,
}

impl FailoverStats {
    /// Folds another worker's counters into this (cluster-level) copy.
    pub fn merge(&mut self, other: &FailoverStats) {
        self.heartbeats_sent += other.heartbeats_sent;
        self.heartbeats_lost += other.heartbeats_lost;
        self.suspects += other.suspects;
        self.false_suspects += other.false_suspects;
        self.evictions += other.evictions;
        self.readmissions += other.readmissions;
        self.failovers += other.failovers;
        self.misrouted += other.misrouted;
        self.duplicated += other.duplicated;
        self.hedges += other.hedges;
        self.hedge_wins += other.hedge_wins;
        self.cancelled += other.cancelled;
        self.rebalanced += other.rebalanced;
        self.drains += other.drains;
        self.lost += other.lost;
        self.detection_ns = self.detection_ns.max(other.detection_ns);
        self.confirm_bound_ns = self.confirm_bound_ns.max(other.confirm_bound_ns);
    }
}

/// Autoscaler and brownout counters: what the control plane spent and what
/// it bought. Per-worker copies carry only the brownout-residency fields;
/// the cluster-level copy in [`ClusterReport`](crate::ClusterReport) adds
/// the scale-event and cost-vs-SLO accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AutoscaleStats {
    /// Scale-up decisions applied.
    pub scale_ups: u64,
    /// Scale-down decisions applied.
    pub scale_downs: u64,
    /// Workers booted by scale-up.
    pub workers_added: u64,
    /// Workers retired by scale-down.
    pub workers_removed: u64,
    /// Direction reversals (an up following a down, or vice versa). The
    /// flap bound: hysteresis + cooldown should keep this ≤ 1 per
    /// cooldown window.
    pub reversals: u64,
    /// Largest concurrently-active fleet observed.
    pub peak_workers: u64,
    /// Σ active worker wall-clock (spawn → retirement or end of run),
    /// seconds of simulated time. The cost axis of cost-vs-SLO.
    pub worker_seconds: f64,
    /// Brownout level changes applied (entries, deepenings, and exits).
    pub brownout_transitions: u64,
    /// Simulated time spent in degraded brownout, ns.
    pub degraded_ns: f64,
    /// Simulated time spent in shed-heavy brownout, ns.
    pub shed_heavy_ns: f64,
    /// Evaluation windows observed.
    pub windows: u64,
    /// Windows meeting the SLO (no sheds, and windowed p99 within target
    /// when both are known).
    pub slo_ok_windows: u64,
}

impl AutoscaleStats {
    /// Fraction of evaluation windows that met the SLO (1.0 when no
    /// windows were observed — an empty run violated nothing).
    pub fn slo_attainment(&self) -> f64 {
        if self.windows == 0 {
            return 1.0;
        }
        self.slo_ok_windows as f64 / self.windows as f64
    }

    /// Total simulated time under any brownout level, ns.
    pub fn brownout_ns(&self) -> f64 {
        self.degraded_ns + self.shed_heavy_ns
    }

    /// Folds a worker's brownout residency into this (cluster-level) copy.
    /// Scale events are cluster-scoped and tracked by the dispatcher
    /// directly, so only the per-worker fields merge.
    pub fn merge_worker(&mut self, other: &AutoscaleStats) {
        self.brownout_transitions += other.brownout_transitions;
        self.degraded_ns += other.degraded_ns;
        self.shed_heavy_ns += other.shed_heavy_ns;
    }
}

/// PD snapshot-sanitization counters (Groundhog-style restore-to-pristine
/// instead of teardown-and-rebuild).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SanitizeStats {
    /// Invocations that started inside a sanitized, pooled PD (fast path).
    pub pooled_setups: u64,
    /// Invocations that paid the full PD construction cost.
    pub full_setups: u64,
    /// Sanitization passes run at invocation teardown.
    pub sanitizations: u64,
    /// Divergences repaired across all sanitization passes (stray VMAs
    /// unmapped, drifted permissions reset).
    pub repairs: u64,
    /// Σ simulated time spent setting up pooled PDs, ns.
    pub pooled_setup_ns: f64,
    /// Σ simulated time spent on full PD setups, ns.
    pub full_setup_ns: f64,
}

impl SanitizeStats {
    /// Mean fast-path setup latency, ns.
    pub fn mean_pooled_ns(&self) -> f64 {
        if self.pooled_setups == 0 {
            return 0.0;
        }
        self.pooled_setup_ns / self.pooled_setups as f64
    }

    /// Mean full-construction setup latency, ns.
    pub fn mean_full_ns(&self) -> f64 {
        if self.full_setups == 0 {
            return 0.0;
        }
        self.full_setup_ns / self.full_setups as f64
    }

    /// The latency delta sanitization buys per invocation: mean full setup
    /// minus mean pooled setup, ns (positive when pooling is faster).
    pub fn setup_delta_ns(&self) -> f64 {
        if self.pooled_setups == 0 || self.full_setups == 0 {
            return 0.0;
        }
        self.mean_full_ns() - self.mean_pooled_ns()
    }
}

/// Accumulated per-function service statistics (Figure 11's bars).
#[derive(Debug, Clone, Default)]
pub struct FunctionBreakdown {
    /// Completed invocations.
    pub count: u64,
    /// Σ business-logic time.
    pub exec: SimDuration,
    /// Σ memory-isolation time.
    pub isolation: SimDuration,
    /// Σ dispatch time.
    pub dispatch: SimDuration,
    /// Σ end-to-end service time (dispatch + queueing + execution +
    /// waiting on children).
    pub service: SimDuration,
}

impl FunctionBreakdown {
    /// Mean service time in ns.
    pub fn mean_service_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.service.as_ns_f64() / self.count as f64
    }

    /// Mean (exec, isolation, dispatch) in ns.
    pub fn mean_parts_ns(&self) -> (f64, f64, f64) {
        if self.count == 0 {
            return (0.0, 0.0, 0.0);
        }
        let n = self.count as f64;
        (
            self.exec.as_ns_f64() / n,
            self.isolation.as_ns_f64() / n,
            self.dispatch.as_ns_f64() / n,
        )
    }

    /// Overhead fraction of service time: (isolation + dispatch) / service.
    pub fn overhead_fraction(&self) -> f64 {
        let s = self.service.as_ns_f64();
        if s == 0.0 {
            return 0.0;
        }
        (self.isolation.as_ns_f64() + self.dispatch.as_ns_f64()) / s
    }
}

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// External requests injected.
    pub offered: u64,
    /// External requests completed.
    pub completed: u64,
    /// End-to-end request latency (orchestrator receipt → completion
    /// notice, §5).
    pub latency: LatencyHistogram,
    /// Per-invocation function service time (Figure 10's CDF).
    pub service: LatencyHistogram,
    /// Per-function breakdowns (Figure 11).
    pub functions: HashMap<FunctionId, FunctionBreakdown>,
    /// Orchestrator dispatch latencies in ns (Figure 14).
    pub dispatch_ns: OnlineStats,
    /// VLB shootdown completion latencies in ns (Figure 14).
    pub shootdown_ns: OnlineStats,
    /// Simulated completion time of the last event.
    pub finished_at: SimTime,
    /// Total invocations executed (external + nested).
    pub invocations: u64,
    /// Internal requests spilled to peer worker servers (§3.3).
    pub spilled: u64,
    /// Fault, retry, timeout, and shed counters. The accounting invariant
    /// is `offered == completed + faults.failed + faults.sheds`: every
    /// request ends Completed, Faulted, or Shed — none are lost.
    pub faults: FaultStats,
    /// Crash-injection and recovery counters.
    pub crash: CrashStats,
    /// Durable-storage integrity counters (frame scans, checkpoint seals,
    /// recovery-ladder rungs).
    pub durability: DurabilityStats,
    /// PD snapshot-sanitization counters.
    pub sanitize: SanitizeStats,
    /// Cluster-failover counters; all zero in single-worker runs (filled
    /// in by the cluster dispatcher at the end of a cluster run).
    pub failover: FailoverStats,
    /// Autoscaler/brownout counters. Per-worker reports carry only the
    /// brownout-residency fields; the cluster report adds scale events
    /// and worker-seconds.
    pub autoscale: AutoscaleStats,
    /// The memory ledger, conserved as
    /// `mapped == resident + reclaimed` — the byte-side twin of the
    /// request ledger above.
    pub memory: MemoryLedger,
}

impl RunReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        RunReport {
            offered: 0,
            completed: 0,
            latency: LatencyHistogram::new(),
            service: LatencyHistogram::new(),
            functions: HashMap::new(),
            dispatch_ns: OnlineStats::new(),
            shootdown_ns: OnlineStats::new(),
            finished_at: SimTime::ZERO,
            invocations: 0,
            spilled: 0,
            faults: FaultStats::default(),
            crash: CrashStats::default(),
            durability: DurabilityStats::default(),
            sanitize: SanitizeStats::default(),
            failover: FailoverStats::default(),
            autoscale: AutoscaleStats::default(),
            memory: MemoryLedger::default(),
        }
    }

    /// True when the request ledger balances:
    /// `offered == completed + faults.failed + faults.sheds`. Every
    /// request must end Completed, Faulted, or Shed — a `false` here means
    /// a lifecycle transition lost a request.
    pub fn balanced(&self) -> bool {
        self.offered == self.completed + self.faults.failed + self.faults.sheds
    }

    /// Goodput: the fraction of offered requests that completed
    /// successfully (1.0 on a clean run, lower under injection).
    pub fn goodput(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.completed as f64 / self.offered as f64
    }

    /// Records a completed invocation's service time and breakdown.
    pub fn record_invocation(
        &mut self,
        func: FunctionId,
        service: SimDuration,
        breakdown: Breakdown,
    ) {
        self.invocations += 1;
        self.service.record(service);
        let f = self.functions.entry(func).or_default();
        f.count += 1;
        f.exec += breakdown.exec;
        f.isolation += breakdown.isolation;
        f.dispatch += breakdown.dispatch;
        f.service += service;
    }

    /// Records a completed external request's end-to-end latency.
    pub fn record_request(&mut self, latency: SimDuration) {
        self.completed += 1;
        self.latency.record(latency);
    }

    /// p99 request latency, if any requests completed.
    pub fn p99(&self) -> Option<SimDuration> {
        self.latency.p99()
    }

    /// Mean isolation+dispatch overhead per completed request, ns.
    pub fn overhead_per_request_ns(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        let total: f64 = self
            .functions
            .values()
            .map(|f| f.isolation.as_ns_f64() + f.dispatch.as_ns_f64())
            .sum();
        total / self.completed as f64
    }
}

impl Default for RunReport {
    fn default() -> Self {
        RunReport::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_function() {
        let mut r = RunReport::new();
        let f = FunctionId(1);
        let b = Breakdown {
            exec: SimDuration::from_ns(1000),
            isolation: SimDuration::from_ns(100),
            dispatch: SimDuration::from_ns(50),
        };
        r.record_invocation(f, SimDuration::from_ns(1200), b);
        r.record_invocation(f, SimDuration::from_ns(1400), b);
        let fb = &r.functions[&f];
        assert_eq!(fb.count, 2);
        assert_eq!(fb.mean_service_ns(), 1300.0);
        let (e, i, d) = fb.mean_parts_ns();
        assert_eq!((e, i, d), (1000.0, 100.0, 50.0));
        assert!((fb.overhead_fraction() - 150.0 / 1300.0).abs() < 1e-12);
        assert_eq!(r.invocations, 2);
    }

    #[test]
    fn request_latency_feeds_p99() {
        let mut r = RunReport::new();
        for ns in 1..=100 {
            r.record_request(SimDuration::from_us(ns));
        }
        assert_eq!(r.completed, 100);
        let p99 = r.p99().unwrap().as_us_f64();
        assert!((98.0..=101.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn empty_report_is_sane() {
        let r = RunReport::new();
        assert_eq!(r.p99(), None);
        assert_eq!(r.overhead_per_request_ns(), 0.0);
        assert_eq!(r.goodput(), 1.0);
        assert_eq!(r.faults, FaultStats::default());
        assert_eq!(FunctionBreakdown::default().mean_service_ns(), 0.0);
        assert_eq!(FunctionBreakdown::default().overhead_fraction(), 0.0);
    }

    #[test]
    fn fault_stats_count_by_kind() {
        let mut s = FaultStats::default();
        s.count(FaultKind::Unmapped);
        s.count(FaultKind::Unmapped);
        s.count(FaultKind::CsrAccess);
        assert_eq!(s.of_kind(FaultKind::Unmapped), 2);
        assert_eq!(s.of_kind(FaultKind::Permission), 0);
        assert_eq!(s.of_kind(FaultKind::CsrAccess), 1);
        assert_eq!(s.total_faults(), 3);
    }

    #[test]
    fn sanitize_stats_expose_setup_delta() {
        let mut s = SanitizeStats::default();
        assert_eq!(s.setup_delta_ns(), 0.0, "no data, no delta");
        s.full_setups = 2;
        s.full_setup_ns = 8_000.0;
        assert_eq!(s.setup_delta_ns(), 0.0, "needs both paths sampled");
        s.pooled_setups = 4;
        s.pooled_setup_ns = 4_000.0;
        assert_eq!(s.mean_full_ns(), 4_000.0);
        assert_eq!(s.mean_pooled_ns(), 1_000.0);
        assert_eq!(s.setup_delta_ns(), 3_000.0);
    }

    #[test]
    fn goodput_reflects_losses() {
        let mut r = RunReport::new();
        r.offered = 10;
        r.completed = 7;
        r.faults.failed = 2;
        r.faults.sheds = 1;
        assert!((r.goodput() - 0.7).abs() < 1e-12);
        assert_eq!(r.offered, r.completed + r.faults.failed + r.faults.sheds);
    }
}
