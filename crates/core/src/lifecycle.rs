//! The typed per-request state machine (Figure 4, made explicit).
//!
//! [`transition`] is the **only** place a request may change state: given
//! the request's current [`InvocationState`] and a [`LifecycleEvent`], it
//! either returns the successor state plus the [`Effect`]s the event bus
//! must apply (journal append, stats update, notice, trace), or rejects
//! the transition as illegal. The server funnels every event through
//! [`LifecycleEngine::apply`], so a bookkeeping path that used to be
//! hand-threaded through dozens of call sites is now a legality-checked
//! table lookup.
//!
//! The state graph (terminal states retire the request row):
//!
//! ```text
//!             Offered ──Admitted──▶ Queued ──Dispatched──▶ InFlight
//!            ▲   │  │                 │  │                 │  │  │
//!  RetryFired│   │  └──Cancelled─┐    │  └──Cancelled─┐    │  │  └─Completed
//!            │  Shed             ▼    │               ▼    │  │
//!            │   │          [Cancelled]◀──────────────┘  Failed│
//!            │   ▼                    │                        │
//!         RetryWait◀──RetryScheduled──┴────RetryScheduled──────┘
//!            │    │
//!            │    └──RetryDropped──▶ [Failed]
//!            └─(unchanged journal row survives a worker crash)
//! ```
//!
//! The [`LifecycleEngine`] keeps one [`RequestRow`] per live request —
//! the table the cluster hooks (`queued_tags`, `cancel_tagged`,
//! `crash_for_cluster`) read instead of re-walking server internals, and
//! a fourth independent witness for the crash-recovery replay proof.

use std::collections::BTreeMap;
use std::fmt;

use jord_sim::SimTime;

use crate::events::LifecycleEvent;
use crate::function::FunctionId;
use crate::invocation::InvocationId;

/// Where a live external request currently is.
///
/// Terminal states ([`Completed`](Self::Completed), [`Failed`](Self::Failed),
/// [`Shed`](Self::Shed), [`Cancelled`](Self::Cancelled)) are returned by
/// [`transition`] but never stored: the [`Effect::Retire`] accompanying
/// them removes the request row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvocationState {
    /// Scheduled in the future-event list, not yet at an orchestrator.
    Offered,
    /// In an orchestrator's external queue (admitted, not dispatched).
    Queued,
    /// Handed to an executor (queued there, running, or suspended).
    InFlight,
    /// Waiting out a retry backoff (or a crash re-admission delay).
    RetryWait,
    /// Terminal: completed successfully.
    Completed,
    /// Terminal: failed (retries exhausted, crash policy, or dropped
    /// retry).
    Failed,
    /// Terminal: shed at admission.
    Shed,
    /// Terminal: withdrawn by the tier above.
    Cancelled,
}

/// What the event bus must do with an event, as decided by [`transition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Append the write-ahead journal record (before all other effects).
    Journal,
    /// Update the run-report counters.
    Stats,
    /// Offer a terminal notice to the cluster dispatcher.
    Notice,
    /// Record the event in the trace ring.
    Trace,
    /// Remove the request row: the request reached a terminal state.
    Retire,
}

/// An illegal state transition: the event cannot be applied to the
/// request's current state. Reaching this is a runtime bug, not an input
/// error — the server panics on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleError {
    /// The state the request was in (`None`: no row existed).
    pub state: Option<InvocationState>,
    /// The rejected event's variant name.
    pub event: &'static str,
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.state {
            Some(s) => write!(f, "event {} is illegal in state {s:?}", self.event),
            None => write!(f, "event {} requires a live request row", self.event),
        }
    }
}

impl std::error::Error for LifecycleError {}

/// The single legality check every request state change passes through.
///
/// `state` is the request's current state (`None` when no row exists:
/// required for [`LifecycleEvent::Offered`] and the stat-only events,
/// illegal for everything else). On success, returns the successor state
/// (`None` only for stat-only events) and the ordered effect list.
///
/// # Errors
///
/// Returns a [`LifecycleError`] naming the state/event pair when the
/// transition is not in the table.
pub fn transition(
    state: Option<InvocationState>,
    event: &LifecycleEvent,
) -> Result<(Option<InvocationState>, Vec<Effect>), LifecycleError> {
    use Effect::*;
    use InvocationState::*;
    let illegal = Err(LifecycleError {
        state,
        event: event.name(),
    });
    let ok = |next: InvocationState, effects: Vec<Effect>| Ok((Some(next), effects));
    match (event, state) {
        (LifecycleEvent::Offered { .. }, None) => ok(Offered, vec![Stats, Trace]),
        (LifecycleEvent::Shed { .. }, Some(Offered)) => {
            ok(Shed, vec![Journal, Stats, Notice, Trace, Retire])
        }
        (LifecycleEvent::Admitted { .. }, Some(Offered)) => ok(Queued, vec![Journal, Trace]),
        (LifecycleEvent::ArgBufGranted { .. }, Some(Queued)) => ok(Queued, vec![Journal, Trace]),
        (LifecycleEvent::Dispatched { .. }, Some(Queued)) => ok(InFlight, vec![Journal, Trace]),
        (LifecycleEvent::PdCreated { .. }, Some(InFlight)) => ok(InFlight, vec![Journal, Trace]),
        (LifecycleEvent::Completed { .. }, Some(InFlight)) => {
            ok(Completed, vec![Journal, Stats, Notice, Trace, Retire])
        }
        // A request can fail out of the orchestrator queue too (a crash
        // killing queued work under at-most-once semantics).
        (LifecycleEvent::Failed { .. }, Some(Queued | InFlight)) => {
            ok(Failed, vec![Journal, Stats, Notice, Trace, Retire])
        }
        (LifecycleEvent::RetryScheduled { .. }, Some(Queued | InFlight)) => {
            ok(RetryWait, vec![Journal, Stats, Trace])
        }
        (LifecycleEvent::RetryFired { .. }, Some(RetryWait)) => ok(Offered, vec![Journal, Trace]),
        // A dropped retry fails without a notice: whole-worker crash
        // recovery reports interruptions through the stranded path.
        (LifecycleEvent::RetryDropped { .. }, Some(RetryWait)) => {
            ok(Failed, vec![Journal, Stats, Trace, Retire])
        }
        (LifecycleEvent::Cancelled { .. }, Some(Offered | Queued)) => {
            ok(Cancelled, vec![Journal, Stats, Trace, Retire])
        }
        // Stat-only events never touch a request row.
        (LifecycleEvent::Crashed { .. }, None) => Ok((None, vec![Journal, Stats, Trace])),
        (LifecycleEvent::BrownoutChanged { .. }, None) => Ok((None, vec![Journal, Stats, Trace])),
        (
            LifecycleEvent::Aborted { .. }
            | LifecycleEvent::Spilled
            | LifecycleEvent::Glitched { .. }
            | LifecycleEvent::InvocationFinished { .. }
            | LifecycleEvent::PdSetup { .. }
            | LifecycleEvent::PdSanitized { .. }
            | LifecycleEvent::CrashKilled { .. }
            | LifecycleEvent::Replayed { .. }
            | LifecycleEvent::PoolEvicted { .. }
            | LifecycleEvent::TableCompacted { .. }
            | LifecycleEvent::MemoryPressureChanged { .. }
            | LifecycleEvent::JournalScanned { .. }
            | LifecycleEvent::CheckpointSealChecked { .. }
            | LifecycleEvent::RecoveryRungTaken { .. }
            | LifecycleEvent::WorkDemoted { .. },
            None,
        ) => Ok((None, vec![Stats, Trace])),
        _ => illegal,
    }
}

/// One live request as the lifecycle engine tracks it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRow {
    /// Worker-local request id.
    pub req: u64,
    /// Cluster tag (0 = untagged).
    pub tag: u64,
    /// The requested function.
    pub func: FunctionId,
    /// Payload size.
    pub bytes: u64,
    /// Arrival time (original receipt, preserved across retries).
    pub arrival: SimTime,
    /// Current dispatch attempt.
    pub attempt: u32,
    /// Where the request is.
    pub state: InvocationState,
    /// Slab id, while admitted ([`Queued`](InvocationState::Queued) /
    /// [`InFlight`](InvocationState::InFlight)).
    pub slab: Option<InvocationId>,
    /// Pending-retry token, while in
    /// [`RetryWait`](InvocationState::RetryWait).
    pub token: Option<u64>,
}

/// The request table plus the id/token allocators: every state change
/// enters through [`apply`](Self::apply), which delegates legality to
/// [`transition`] and keeps the rows in sync with the event stream.
#[derive(Debug)]
pub struct LifecycleEngine {
    rows: BTreeMap<u64, RequestRow>,
    next_req: u64,
    next_token: u64,
}

impl LifecycleEngine {
    /// An empty engine.
    pub fn new() -> Self {
        LifecycleEngine {
            rows: BTreeMap::new(),
            // Request ids start at 1 so 0 can mean "no request" in the
            // invocation record (internal invocations carry req 0).
            next_req: 1,
            next_token: 0,
        }
    }

    /// Allocates the next request id (monotonic, never reused).
    pub fn alloc_req(&mut self) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        req
    }

    /// Allocates the next pending-retry token (monotonic across the whole
    /// run, even when a cluster crash replaces the journal).
    pub fn alloc_token(&mut self) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        token
    }

    /// Applies one event: legality-checks it with [`transition`], updates
    /// the request row (insert on offer, retire on terminal), and returns
    /// the effect list for the event bus.
    ///
    /// # Errors
    ///
    /// Returns the [`LifecycleError`] unchanged when the transition is
    /// illegal; the table is untouched in that case.
    pub fn apply(&mut self, ev: &LifecycleEvent) -> Result<Vec<Effect>, LifecycleError> {
        let Some(req) = ev.req() else {
            let (next, effects) = transition(None, ev)?;
            debug_assert!(next.is_none(), "stat-only events yield no state");
            return Ok(effects);
        };
        let state = self.rows.get(&req).map(|r| r.state);
        let (next, effects) = transition(state, ev)?;
        let next = next.expect("request events always yield a state");
        if effects.contains(&Effect::Retire) {
            self.rows.remove(&req);
        } else {
            self.update_row(req, next, ev);
        }
        Ok(effects)
    }

    fn update_row(&mut self, req: u64, next: InvocationState, ev: &LifecycleEvent) {
        if let LifecycleEvent::Offered {
            func,
            bytes,
            tag,
            at,
            ..
        } = *ev
        {
            let prev = self.rows.insert(
                req,
                RequestRow {
                    req,
                    tag,
                    func,
                    bytes,
                    arrival: at,
                    attempt: 0,
                    state: next,
                    slab: None,
                    token: None,
                },
            );
            debug_assert!(prev.is_none(), "request {req} offered twice");
            return;
        }
        let row = self.rows.get_mut(&req).expect("transition checked the row");
        row.state = next;
        match *ev {
            LifecycleEvent::Admitted {
                id,
                func,
                bytes,
                arrival,
                attempt,
                ..
            } => {
                row.slab = Some(id);
                row.func = func;
                row.bytes = bytes;
                row.arrival = arrival;
                row.attempt = attempt;
            }
            LifecycleEvent::RetryScheduled { token, retry, .. } => {
                row.slab = None;
                row.token = Some(token);
                row.func = retry.func;
                row.bytes = retry.bytes;
                row.arrival = retry.arrival;
                row.attempt = retry.attempt;
            }
            LifecycleEvent::RetryFired { .. } => row.token = None,
            _ => {}
        }
    }

    /// Number of live request rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no requests are live.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Every live row, in request-id (offer) order.
    pub fn rows(&self) -> impl Iterator<Item = &RequestRow> {
        self.rows.values()
    }

    /// Tagged rows currently in one of `states`, in request-id order —
    /// the shared walk behind `queued_tags`, `cancel_tagged`, and
    /// `crash_for_cluster`.
    pub fn tagged_in<'a>(
        &'a self,
        states: &'a [InvocationState],
    ) -> impl Iterator<Item = &'a RequestRow> + 'a {
        self.rows
            .values()
            .filter(move |r| r.tag != 0 && states.contains(&r.state))
    }

    /// The first (oldest-offered) row carrying `tag` in one of `states`.
    pub fn find_tagged(&self, tag: u64, states: &[InvocationState]) -> Option<RequestRow> {
        self.rows
            .values()
            .find(|r| r.tag == tag && states.contains(&r.state))
            .copied()
    }

    /// The request holding slab id `id`, if any.
    pub fn req_of_slab(&self, id: InvocationId) -> Option<u64> {
        self.rows
            .values()
            .find(|r| r.slab == Some(id))
            .map(|r| r.req)
    }

    /// The request holding pending-retry `token`, if any.
    pub fn req_of_token(&self, token: u64) -> Option<u64> {
        self.rows
            .values()
            .find(|r| r.token == Some(token))
            .map(|r| r.req)
    }

    /// Slab ids of every admitted row, sorted — compared against the
    /// journal's in-flight table and the slab's external population in
    /// the crash-recovery proof.
    pub fn live_slab_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .rows
            .values()
            .filter_map(|r| r.slab)
            .map(|i| i.0)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Tokens of every retry-waiting row, sorted — compared against the
    /// journal's pending-retry table in the crash-recovery proof.
    pub fn live_tokens(&self) -> Vec<u64> {
        let mut toks: Vec<u64> = self.rows.values().filter_map(|r| r.token).collect();
        toks.sort_unstable();
        toks
    }

    /// Removes and returns every live row in request-id order (a cluster
    /// crash strands all of them to the dispatcher at once).
    pub fn drain_rows(&mut self) -> Vec<RequestRow> {
        std::mem::take(&mut self.rows).into_values().collect()
    }
}

impl Default for LifecycleEngine {
    fn default() -> Self {
        LifecycleEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RetryKind;
    use crate::journal::PendingRetry;

    fn offered(req: u64, tag: u64) -> LifecycleEvent {
        LifecycleEvent::Offered {
            req,
            func: FunctionId(0),
            bytes: 64,
            tag,
            at: SimTime::ZERO,
        }
    }

    fn admitted(req: u64, slab: usize) -> LifecycleEvent {
        LifecycleEvent::Admitted {
            req,
            id: InvocationId(slab),
            func: FunctionId(0),
            bytes: 64,
            arrival: SimTime::ZERO,
            attempt: 0,
            tag: 0,
            orch: 0,
        }
    }

    #[test]
    fn happy_path_walks_the_whole_chain() {
        let mut eng = LifecycleEngine::new();
        let req = eng.alloc_req();
        eng.apply(&offered(req, 0)).unwrap();
        assert_eq!(eng.rows().next().unwrap().state, InvocationState::Offered);
        eng.apply(&admitted(req, 3)).unwrap();
        assert_eq!(eng.live_slab_ids(), [3]);
        eng.apply(&LifecycleEvent::Dispatched {
            req,
            id: InvocationId(3),
            executor: 0,
        })
        .unwrap();
        assert_eq!(eng.rows().next().unwrap().state, InvocationState::InFlight);
        let fx = eng
            .apply(&LifecycleEvent::Completed {
                req,
                id: InvocationId(3),
                tag: 0,
                at: SimTime::ZERO,
                latency: jord_sim::SimDuration::ZERO,
                measured: true,
            })
            .unwrap();
        assert!(fx.contains(&Effect::Retire));
        assert!(eng.is_empty(), "terminal outcome retires the row");
    }

    #[test]
    fn illegal_transitions_are_rejected_and_leave_the_table_intact() {
        let mut eng = LifecycleEngine::new();
        let req = eng.alloc_req();
        // Dispatch without admission: no row yet.
        let err = eng
            .apply(&LifecycleEvent::Dispatched {
                req,
                id: InvocationId(0),
                executor: 0,
            })
            .unwrap_err();
        assert_eq!(err.state, None);
        assert_eq!(err.event, "Dispatched");
        assert!(err.to_string().contains("Dispatched"));
        eng.apply(&offered(req, 0)).unwrap();
        // Completing an undispatched request is illegal.
        let err = eng
            .apply(&LifecycleEvent::Completed {
                req,
                id: InvocationId(0),
                tag: 0,
                at: SimTime::ZERO,
                latency: jord_sim::SimDuration::ZERO,
                measured: true,
            })
            .unwrap_err();
        assert_eq!(err.state, Some(InvocationState::Offered));
        assert_eq!(eng.len(), 1, "failed apply mutates nothing");
        assert_eq!(eng.rows().next().unwrap().state, InvocationState::Offered);
    }

    #[test]
    fn retry_round_trip_reuses_the_row() {
        let mut eng = LifecycleEngine::new();
        let req = eng.alloc_req();
        eng.apply(&offered(req, 7)).unwrap();
        eng.apply(&admitted(req, 0)).unwrap();
        let token = eng.alloc_token();
        eng.apply(&LifecycleEvent::RetryScheduled {
            req,
            id: InvocationId(0),
            token,
            retry: PendingRetry {
                func: FunctionId(0),
                bytes: 64,
                arrival: SimTime::ZERO,
                attempt: 1,
                tag: 7,
                due: SimTime::from_us(5),
            },
            kind: RetryKind::Backoff,
            measured: true,
        })
        .unwrap();
        assert_eq!(eng.live_tokens(), [token]);
        assert_eq!(eng.live_slab_ids(), [] as [usize; 0]);
        assert_eq!(eng.req_of_token(token), Some(req));
        let row = *eng.rows().next().unwrap();
        assert_eq!(row.attempt, 1);
        assert_eq!(row.state, InvocationState::RetryWait);
        eng.apply(&LifecycleEvent::RetryFired { req, token })
            .unwrap();
        let row = *eng.rows().next().unwrap();
        assert_eq!(row.state, InvocationState::Offered);
        assert_eq!(row.token, None, "token consumed");
        // Re-admission on a different slab id.
        eng.apply(&admitted(req, 9)).unwrap();
        assert_eq!(eng.req_of_slab(InvocationId(9)), Some(req));
    }

    #[test]
    fn tagged_walks_filter_by_state_and_tag() {
        let mut eng = LifecycleEngine::new();
        let a = eng.alloc_req();
        let b = eng.alloc_req();
        let c = eng.alloc_req();
        eng.apply(&offered(a, 1)).unwrap();
        eng.apply(&offered(b, 2)).unwrap();
        eng.apply(&offered(c, 0)).unwrap(); // untagged: invisible to walks
        eng.apply(&admitted(b, 0)).unwrap();
        let cancellable = [InvocationState::Offered, InvocationState::Queued];
        let tags: Vec<u64> = eng.tagged_in(&cancellable).map(|r| r.tag).collect();
        assert_eq!(tags, [1, 2], "request-id order, untagged skipped");
        assert_eq!(
            eng.find_tagged(2, &cancellable).unwrap().slab,
            Some(InvocationId(0))
        );
        assert!(eng.find_tagged(2, &[InvocationState::Offered]).is_none());
        let drained = eng.drain_rows();
        assert_eq!(drained.len(), 3);
        assert!(eng.is_empty());
    }

    #[test]
    fn allocators_are_monotonic() {
        let mut eng = LifecycleEngine::new();
        let r0 = eng.alloc_req();
        let r1 = eng.alloc_req();
        assert!(r0 >= 1, "req 0 is reserved for internal invocations");
        assert_eq!(r1, r0 + 1);
        let t0 = eng.alloc_token();
        let t1 = eng.alloc_token();
        assert_eq!(t1, t0 + 1);
    }
}
