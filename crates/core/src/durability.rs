//! The durable-storage layer under the write-ahead journal: framed,
//! checksummed encoding, checkpoint integrity seals, and the scanner
//! that recovers a trusted prefix from a possibly-corrupt log.
//!
//! PR 2's crash replay assumed the journal survives a crash byte-perfect.
//! Real storage fails *partially*: the last frame of an in-flight write
//! tears, a bit rots, an acknowledged write never lands, a write buffer
//! replays twice, a checkpoint file truncates. This module makes the
//! journal's integrity explicit so recovery can check it instead of
//! assuming it:
//!
//! - every [`JournalRecord`] is appended to a [`DurableLog`] as a
//!   length-prefixed frame `[len:u32][seq:u64][checksum:u64][payload]`,
//!   where `checksum` is FNV-1a over the sequence number and payload
//!   (the same hash the trace ring uses) and `seq` increases by one per
//!   frame — so torn tails, interior corruption, lost writes, and
//!   duplicated frames are all *detectable*;
//! - every checkpoint captures a [`CheckpointSeal`]: the frame count,
//!   byte length, and whole-log running hash at capture, plus a digest
//!   over the seal itself — so recovery can prove a checkpoint and the
//!   log prefix it depends on agree before trusting either;
//! - [`scan`] walks a (possibly struck) byte image and returns the
//!   longest verifiable prefix, dropping exact duplicate frames and
//!   classifying the first anomaly, which
//!   [`RecoveryRung`](crate::recovery::RecoveryRung) selection in the
//!   crash handler turns into a recovery ladder.
//!
//! [`apply_strike`] acts out a [`StorageStrike`] drawn by jord-hw's
//! injector: the hardware crate names the failure mode and supplies raw
//! seeded entropy; this module, which owns the frame geometry, reduces
//! the entropy onto concrete frame/byte/bit coordinates. Everything is
//! deterministic per seed, and nothing here consumes randomness unless a
//! storage fault is actually armed.

use jord_hw::types::Va;
use jord_hw::{StorageFaultKind, StorageStrike};
use jord_sim::SimTime;

use crate::admission::BrownoutLevel;
use crate::function::FunctionId;
use crate::invocation::InvocationId;
use crate::journal::JournalRecord;

/// Frame header size: `len: u32` + `seq: u64` + `checksum: u64`.
pub const FRAME_HEADER_BYTES: usize = 4 + 8 + 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a hash.
fn fnv1a_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over `bytes` from the standard offset basis.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_fold(FNV_OFFSET, bytes)
}

/// Per-frame checksum: FNV-1a over the sequence number then the payload,
/// so a frame copied to a different position fails verification even if
/// its payload is intact.
fn frame_checksum(seq: u64, payload: &[u8]) -> u64 {
    fnv1a_fold(fnv1a_fold(FNV_OFFSET, &seq.to_le_bytes()), payload)
}

// ----------------------------------------------------------------------
// Record payload codec
// ----------------------------------------------------------------------

/// Crash-scope labels the journal can carry, in encoding order. The
/// journal stores `&'static str` labels; frames store the index.
const SCOPE_LABELS: [&str; 4] = ["executor", "orchestrator", "worker", "cluster-worker"];

fn scope_index(scope: &str) -> u8 {
    SCOPE_LABELS
        .iter()
        .position(|&s| s == scope)
        .map_or(u8::MAX, |i| i as u8)
}

fn brownout_index(level: BrownoutLevel) -> u8 {
    match level {
        BrownoutLevel::Normal => 0,
        BrownoutLevel::Degraded => 1,
        BrownoutLevel::ShedHeavy => 2,
    }
}

fn brownout_from(idx: u8) -> Option<BrownoutLevel> {
    match idx {
        0 => Some(BrownoutLevel::Normal),
        1 => Some(BrownoutLevel::Degraded),
        2 => Some(BrownoutLevel::ShedHeavy),
        _ => None,
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_time(out: &mut Vec<u8>, t: SimTime) {
    put_u64(out, t.as_ps());
}

/// Cursor over a payload; every `take_*` fails (returns `None`) rather
/// than panicking, so corrupt payloads decode to `None`, never UB or
/// garbage values.
struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, off: 0 }
    }

    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let end = self.off.checked_add(N)?;
        let bytes: [u8; N] = self.buf.get(self.off..end)?.try_into().ok()?;
        self.off = end;
        Some(bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take::<8>().map(u64::from_le_bytes)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take::<4>().map(u32::from_le_bytes)
    }

    fn u16(&mut self) -> Option<u16> {
        self.take::<2>().map(u16::from_le_bytes)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|[b]| b)
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn time(&mut self) -> Option<SimTime> {
        self.u64().map(SimTime::from_ps)
    }

    fn done(&self) -> bool {
        self.off == self.buf.len()
    }
}

const TAG_ADMIT: u8 = 0;
const TAG_DISPATCH: u8 = 1;
const TAG_PD_CREATE: u8 = 2;
const TAG_ARGBUF_GRANT: u8 = 3;
const TAG_COMPLETE: u8 = 4;
const TAG_FAIL: u8 = 5;
const TAG_SHED: u8 = 6;
const TAG_RETRY_SCHEDULED: u8 = 7;
const TAG_RETRY_FIRED: u8 = 8;
const TAG_RETRY_DROPPED: u8 = 9;
const TAG_CANCEL: u8 = 10;
const TAG_CRASH: u8 = 11;
const TAG_CHECKPOINT: u8 = 12;
const TAG_BROWNOUT: u8 = 13;

/// Appends the binary payload encoding of `r` (a tag byte followed by
/// fixed-width little-endian fields) to `out`.
pub fn encode_record(r: &JournalRecord, out: &mut Vec<u8>) {
    match *r {
        JournalRecord::Admit {
            id,
            func,
            bytes,
            arrival,
            attempt,
            tag,
        } => {
            out.push(TAG_ADMIT);
            put_u64(out, id.0 as u64);
            put_u32(out, func.0);
            put_u64(out, bytes);
            put_time(out, arrival);
            put_u32(out, attempt);
            put_u64(out, tag);
        }
        JournalRecord::Dispatch { id, executor } => {
            out.push(TAG_DISPATCH);
            put_u64(out, id.0 as u64);
            put_u64(out, executor as u64);
        }
        JournalRecord::PdCreate { id, pd } => {
            out.push(TAG_PD_CREATE);
            put_u64(out, id.0 as u64);
            out.extend_from_slice(&pd.to_le_bytes());
        }
        JournalRecord::ArgBufGrant { id, va, bytes } => {
            out.push(TAG_ARGBUF_GRANT);
            put_u64(out, id.0 as u64);
            put_u64(out, va);
            put_u64(out, bytes);
        }
        JournalRecord::Complete { id, measured } => {
            out.push(TAG_COMPLETE);
            put_u64(out, id.0 as u64);
            out.push(measured as u8);
        }
        JournalRecord::Fail { id, measured } => {
            out.push(TAG_FAIL);
            put_u64(out, id.0 as u64);
            out.push(measured as u8);
        }
        JournalRecord::Shed { func, measured } => {
            out.push(TAG_SHED);
            put_u32(out, func.0);
            out.push(measured as u8);
        }
        JournalRecord::RetryScheduled {
            token,
            id,
            func,
            bytes,
            arrival,
            attempt,
            due,
            tag,
            measured,
        } => {
            out.push(TAG_RETRY_SCHEDULED);
            put_u64(out, token);
            put_u64(out, id.0 as u64);
            put_u32(out, func.0);
            put_u64(out, bytes);
            put_time(out, arrival);
            put_u32(out, attempt);
            put_time(out, due);
            put_u64(out, tag);
            out.push(measured as u8);
        }
        JournalRecord::RetryFired { token } => {
            out.push(TAG_RETRY_FIRED);
            put_u64(out, token);
        }
        JournalRecord::RetryDropped { token, measured } => {
            out.push(TAG_RETRY_DROPPED);
            put_u64(out, token);
            out.push(measured as u8);
        }
        JournalRecord::Cancel { id } => {
            out.push(TAG_CANCEL);
            put_u64(out, id.0 as u64);
        }
        JournalRecord::Crash { scope } => {
            out.push(TAG_CRASH);
            out.push(scope_index(scope));
        }
        JournalRecord::Checkpoint => out.push(TAG_CHECKPOINT),
        JournalRecord::Brownout { level } => {
            out.push(TAG_BROWNOUT);
            out.push(brownout_index(level));
        }
    }
}

/// Decodes one record payload. Returns `None` unless the payload parses
/// completely and exactly (no trailing bytes, no out-of-range field).
pub fn decode_record(payload: &[u8]) -> Option<JournalRecord> {
    let mut r = Reader::new(payload);
    let rec = match r.u8()? {
        TAG_ADMIT => JournalRecord::Admit {
            id: InvocationId(r.u64()? as usize),
            func: FunctionId(r.u32()?),
            bytes: r.u64()?,
            arrival: r.time()?,
            attempt: r.u32()?,
            tag: r.u64()?,
        },
        TAG_DISPATCH => JournalRecord::Dispatch {
            id: InvocationId(r.u64()? as usize),
            executor: r.u64()? as usize,
        },
        TAG_PD_CREATE => JournalRecord::PdCreate {
            id: InvocationId(r.u64()? as usize),
            pd: r.u16()?,
        },
        TAG_ARGBUF_GRANT => JournalRecord::ArgBufGrant {
            id: InvocationId(r.u64()? as usize),
            va: r.u64()? as Va,
            bytes: r.u64()?,
        },
        TAG_COMPLETE => JournalRecord::Complete {
            id: InvocationId(r.u64()? as usize),
            measured: r.bool()?,
        },
        TAG_FAIL => JournalRecord::Fail {
            id: InvocationId(r.u64()? as usize),
            measured: r.bool()?,
        },
        TAG_SHED => JournalRecord::Shed {
            func: FunctionId(r.u32()?),
            measured: r.bool()?,
        },
        TAG_RETRY_SCHEDULED => JournalRecord::RetryScheduled {
            token: r.u64()?,
            id: InvocationId(r.u64()? as usize),
            func: FunctionId(r.u32()?),
            bytes: r.u64()?,
            arrival: r.time()?,
            attempt: r.u32()?,
            due: r.time()?,
            tag: r.u64()?,
            measured: r.bool()?,
        },
        TAG_RETRY_FIRED => JournalRecord::RetryFired { token: r.u64()? },
        TAG_RETRY_DROPPED => JournalRecord::RetryDropped {
            token: r.u64()?,
            measured: r.bool()?,
        },
        TAG_CANCEL => JournalRecord::Cancel {
            id: InvocationId(r.u64()? as usize),
        },
        TAG_CRASH => JournalRecord::Crash {
            scope: SCOPE_LABELS.get(r.u8()? as usize)?,
        },
        TAG_CHECKPOINT => JournalRecord::Checkpoint,
        TAG_BROWNOUT => JournalRecord::Brownout {
            level: brownout_from(r.u8()?)?,
        },
        _ => return None,
    };
    r.done().then_some(rec)
}

// ----------------------------------------------------------------------
// The framed byte log
// ----------------------------------------------------------------------

/// The journal's durable byte image: every record framed, sequenced, and
/// checksummed, with a whole-log running hash maintained incrementally so
/// checkpoint seals are O(1) to capture.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableLog {
    bytes: Vec<u8>,
    next_seq: u64,
    running_hash: u64,
}

impl Default for DurableLog {
    fn default() -> Self {
        DurableLog {
            bytes: Vec::new(),
            next_seq: 0,
            running_hash: FNV_OFFSET,
        }
    }
}

impl DurableLog {
    /// An empty log.
    pub fn new() -> Self {
        DurableLog::default()
    }

    /// Appends `r` as the next frame.
    pub fn append(&mut self, r: &JournalRecord) {
        let mut payload = Vec::with_capacity(64);
        encode_record(r, &mut payload);
        let seq = self.next_seq;
        let start = self.bytes.len();
        put_u32(&mut self.bytes, payload.len() as u32);
        put_u64(&mut self.bytes, seq);
        put_u64(&mut self.bytes, frame_checksum(seq, &payload));
        self.bytes.extend_from_slice(&payload);
        self.running_hash = fnv1a_fold(self.running_hash, &self.bytes[start..]);
        self.next_seq += 1;
    }

    /// The raw byte image.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Frames appended so far (also the next sequence number).
    pub fn frames(&self) -> u64 {
        self.next_seq
    }

    /// Byte length of the image.
    pub fn len_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// The whole-log running FNV-1a hash.
    pub fn running_hash(&self) -> u64 {
        self.running_hash
    }

    /// Captures an integrity seal over the log as of now.
    pub fn seal(&self) -> CheckpointSeal {
        CheckpointSeal::new(self.next_seq, self.bytes.len() as u64, self.running_hash)
    }
}

/// The integrity seal a checkpoint captures over the durable log: how
/// many frames and bytes the log held at capture and what they hashed
/// to, plus a digest over the seal's own fields so a truncated or
/// corrupted checkpoint image is detectable *before* anything trusts
/// its tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSeal {
    /// Frames the log held at capture (replay starts at this record).
    pub frames: u64,
    /// Byte length of the log at capture.
    pub log_bytes: u64,
    /// Whole-log running hash at capture.
    pub log_hash: u64,
    /// FNV-1a over the three fields above: the seal's self-integrity.
    pub digest: u64,
}

impl CheckpointSeal {
    /// Seals a log state.
    pub fn new(frames: u64, log_bytes: u64, log_hash: u64) -> Self {
        CheckpointSeal {
            frames,
            log_bytes,
            log_hash,
            digest: Self::compute_digest(frames, log_bytes, log_hash),
        }
    }

    fn compute_digest(frames: u64, log_bytes: u64, log_hash: u64) -> u64 {
        let mut h = fnv1a_fold(FNV_OFFSET, &frames.to_le_bytes());
        h = fnv1a_fold(h, &log_bytes.to_le_bytes());
        fnv1a_fold(h, &log_hash.to_le_bytes())
    }

    /// True when the seal's own digest is intact (the checkpoint image
    /// was not truncated or corrupted).
    pub fn self_consistent(&self) -> bool {
        self.digest == Self::compute_digest(self.frames, self.log_bytes, self.log_hash)
    }

    /// Full verification against a log image: the seal is
    /// self-consistent *and* the log prefix it covers still hashes to
    /// the sealed value — proving checkpoint and log agree.
    pub fn verifies(&self, log: &[u8]) -> bool {
        self.self_consistent()
            && (self.log_bytes as usize) <= log.len()
            && fnv1a(&log[..self.log_bytes as usize]) == self.log_hash
    }

    /// The seal with its digest ruined — how a truncated checkpoint
    /// image presents to recovery.
    pub fn corrupted(mut self) -> Self {
        self.digest ^= 0xdead_beef;
        self
    }
}

// ----------------------------------------------------------------------
// Scanning a (possibly corrupt) image back into records
// ----------------------------------------------------------------------

/// The first integrity violation a [`scan`] hit, classifying which
/// recovery rung applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameAnomaly {
    /// The image ends mid-frame: a partial final write. Everything
    /// before the torn frame is trustworthy.
    TornTail,
    /// A complete frame failed its checksum or decode: interior
    /// corruption. The log's integrity chain is broken at this frame.
    CorruptFrame {
        /// Sequence number the corrupt frame claimed (or the position
        /// where it sat).
        seq: u64,
    },
    /// A frame's sequence number jumped forward: at least one
    /// acknowledged write never made it to the device.
    SequenceGap {
        /// The sequence number the scan expected next.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
}

/// What a [`scan`] recovered: the longest verifiable record prefix and
/// the classification of whatever stopped it.
#[derive(Debug)]
pub struct ScanReport {
    /// Decoded records of the trusted prefix, duplicate frames dropped.
    pub records: Vec<JournalRecord>,
    /// Frames that verified (checksum + sequence + decode).
    pub frames_verified: u64,
    /// Exact duplicate frames dropped (sequence regression with a valid
    /// checksum — a replayed write buffer).
    pub duplicates_dropped: u64,
    /// Bytes past the end of the trusted prefix (quarantined or torn).
    pub truncated_bytes: u64,
    /// The first integrity violation, or `None` for a clean image.
    pub anomaly: Option<FrameAnomaly>,
}

impl ScanReport {
    /// Frames positively identified as corrupt (quarantined rather than
    /// merely unreadable).
    pub fn frames_quarantined(&self) -> u64 {
        match self.anomaly {
            Some(FrameAnomaly::CorruptFrame { .. }) => 1,
            _ => 0,
        }
    }
}

/// Walks `log` frame by frame, verifying length, checksum, sequence, and
/// decode, and returns the longest trusted prefix.
///
/// Duplicated frames (sequence regression) are dropped and scanning
/// continues — a replayed write changes no state. Any other violation
/// ends the trusted prefix: bytes from the first bad frame onward are
/// reported as truncated, and the anomaly kind tells the recovery ladder
/// which rung applies.
pub fn scan(log: &[u8]) -> ScanReport {
    let mut records = Vec::new();
    let mut off = 0usize;
    let mut expected = 0u64;
    let mut verified = 0u64;
    let mut duplicates = 0u64;
    let mut anomaly = None;
    while off < log.len() {
        if log.len() - off < FRAME_HEADER_BYTES {
            anomaly = Some(FrameAnomaly::TornTail);
            break;
        }
        let len = u32::from_le_bytes(log[off..off + 4].try_into().unwrap()) as usize;
        let seq = u64::from_le_bytes(log[off + 4..off + 12].try_into().unwrap());
        let checksum = u64::from_le_bytes(log[off + 12..off + 20].try_into().unwrap());
        let Some(end) = off
            .checked_add(FRAME_HEADER_BYTES)
            .and_then(|h| h.checked_add(len))
            .filter(|&e| e <= log.len())
        else {
            anomaly = Some(FrameAnomaly::TornTail);
            break;
        };
        let payload = &log[off + FRAME_HEADER_BYTES..end];
        if frame_checksum(seq, payload) != checksum {
            anomaly = Some(FrameAnomaly::CorruptFrame { seq: expected });
            break;
        }
        if seq < expected {
            // A replayed write: the identical frame already applied.
            duplicates += 1;
            off = end;
            continue;
        }
        if seq > expected {
            anomaly = Some(FrameAnomaly::SequenceGap {
                expected,
                found: seq,
            });
            break;
        }
        let Some(rec) = decode_record(payload) else {
            anomaly = Some(FrameAnomaly::CorruptFrame { seq });
            break;
        };
        records.push(rec);
        verified += 1;
        expected += 1;
        off = end;
    }
    ScanReport {
        records,
        frames_verified: verified,
        duplicates_dropped: duplicates,
        truncated_bytes: (log.len() - off) as u64,
        anomaly,
    }
}

// ----------------------------------------------------------------------
// Acting out a storage strike
// ----------------------------------------------------------------------

/// Byte spans `(offset, total_len)` of every frame in an intact image.
fn frame_spans(log: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut off = 0usize;
    while off + FRAME_HEADER_BYTES <= log.len() {
        let len = u32::from_le_bytes(log[off..off + 4].try_into().unwrap()) as usize;
        let total = FRAME_HEADER_BYTES + len;
        if off + total > log.len() {
            break;
        }
        spans.push((off, total));
        off += total;
    }
    spans
}

/// Mutates `log` according to `strike`, reducing the strike's raw
/// entropy onto this image's frame geometry. Interior modes (bit flip,
/// dropped write, duplicated frame) never target the final frame — the
/// torn-tail mode owns the tail — so each mode exercises a distinct
/// recovery rung. Returns `false` when the image is too small for the
/// mode to apply (nothing mutated).
///
/// [`StorageFaultKind::TruncatedCheckpoint`] corrupts the checkpoint
/// image, not the log, so it is a no-op here; the crash handler ruins
/// the checkpoint's seal instead.
pub fn apply_strike(log: &mut Vec<u8>, strike: &StorageStrike) -> bool {
    let spans = frame_spans(log);
    let interior = |pick: u64| -> Option<(usize, usize)> {
        if spans.len() < 2 {
            return None;
        }
        Some(spans[(pick % (spans.len() as u64 - 1)) as usize])
    };
    match strike.kind {
        StorageFaultKind::TornTail => {
            let Some(&(_, last_len)) = spans.last() else {
                return false;
            };
            // Tear 1..last_len bytes: the final frame is left incomplete,
            // never cleanly removed.
            let tear = 1 + (strike.byte_pick % (last_len as u64 - 1)) as usize;
            log.truncate(log.len() - tear);
            true
        }
        StorageFaultKind::BitFlip => {
            let Some((off, total)) = interior(strike.frame_pick) else {
                return false;
            };
            // Flip a payload bit: the frame still parses, only the
            // checksum betrays it.
            let payload_len = total - FRAME_HEADER_BYTES;
            let byte = off + FRAME_HEADER_BYTES + (strike.byte_pick % payload_len as u64) as usize;
            log[byte] ^= 1 << (strike.bit_pick % 8);
            true
        }
        StorageFaultKind::DroppedWrite => {
            let Some((off, total)) = interior(strike.frame_pick) else {
                return false;
            };
            log.drain(off..off + total);
            true
        }
        StorageFaultKind::DuplicatedFrame => {
            let Some((off, total)) = interior(strike.frame_pick) else {
                return false;
            };
            let copy: Vec<u8> = log[off..off + total].to_vec();
            log.splice(off + total..off + total, copy);
            true
        }
        StorageFaultKind::TruncatedCheckpoint => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        let id = InvocationId(7);
        let f = FunctionId(3);
        let t = SimTime::from_ns(1_234);
        vec![
            JournalRecord::Admit {
                id,
                func: f,
                bytes: 96,
                arrival: t,
                attempt: 0,
                tag: 11,
            },
            JournalRecord::Dispatch { id, executor: 5 },
            JournalRecord::PdCreate { id, pd: 42 },
            JournalRecord::ArgBufGrant {
                id,
                va: 0xdead_0000,
                bytes: 96,
            },
            JournalRecord::Complete { id, measured: true },
            JournalRecord::Fail {
                id,
                measured: false,
            },
            JournalRecord::Shed {
                func: f,
                measured: true,
            },
            JournalRecord::RetryScheduled {
                token: 9,
                id,
                func: f,
                bytes: 96,
                arrival: t,
                attempt: 2,
                due: SimTime::from_us(50),
                tag: 11,
                measured: true,
            },
            JournalRecord::RetryFired { token: 9 },
            JournalRecord::RetryDropped {
                token: 9,
                measured: false,
            },
            JournalRecord::Cancel { id },
            JournalRecord::Crash { scope: "worker" },
            JournalRecord::Checkpoint,
            JournalRecord::Brownout {
                level: BrownoutLevel::Degraded,
            },
        ]
    }

    fn log_of(records: &[JournalRecord]) -> DurableLog {
        let mut log = DurableLog::new();
        for r in records {
            log.append(r);
        }
        log
    }

    #[test]
    fn every_record_variant_round_trips() {
        for r in sample_records() {
            let mut payload = Vec::new();
            encode_record(&r, &mut payload);
            assert_eq!(decode_record(&payload), Some(r), "round trip of {r:?}");
        }
    }

    #[test]
    fn clean_scan_recovers_everything() {
        let records = sample_records();
        let log = log_of(&records);
        let scan = scan(log.bytes());
        assert_eq!(scan.anomaly, None);
        assert_eq!(scan.records, records);
        assert_eq!(scan.frames_verified, records.len() as u64);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.duplicates_dropped, 0);
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let records = sample_records();
        let log = log_of(&records);
        for tear in [1usize, 5, FRAME_HEADER_BYTES] {
            let mut bytes = log.bytes().to_vec();
            bytes.truncate(bytes.len() - tear);
            let scan = scan(&bytes);
            assert_eq!(scan.anomaly, Some(FrameAnomaly::TornTail));
            assert_eq!(scan.records, records[..records.len() - 1]);
        }
    }

    #[test]
    fn bit_flip_is_detected_as_corrupt_frame() {
        let records = sample_records();
        let log = log_of(&records);
        let strike = StorageStrike {
            kind: StorageFaultKind::BitFlip,
            frame_pick: 2,
            byte_pick: 3,
            bit_pick: 6,
        };
        let mut bytes = log.bytes().to_vec();
        assert!(apply_strike(&mut bytes, &strike));
        let scan = scan(&bytes);
        assert_eq!(scan.anomaly, Some(FrameAnomaly::CorruptFrame { seq: 2 }));
        assert_eq!(scan.records, records[..2]);
        assert_eq!(scan.frames_quarantined(), 1);
    }

    #[test]
    fn dropped_write_leaves_a_sequence_gap() {
        let log = log_of(&sample_records());
        let strike = StorageStrike {
            kind: StorageFaultKind::DroppedWrite,
            frame_pick: 4,
            byte_pick: 0,
            bit_pick: 0,
        };
        let mut bytes = log.bytes().to_vec();
        assert!(apply_strike(&mut bytes, &strike));
        let scan = scan(&bytes);
        assert_eq!(
            scan.anomaly,
            Some(FrameAnomaly::SequenceGap {
                expected: 4,
                found: 5
            })
        );
        assert_eq!(scan.frames_verified, 4);
    }

    #[test]
    fn duplicated_frame_is_dropped_and_recovery_is_exact() {
        let records = sample_records();
        let log = log_of(&records);
        let strike = StorageStrike {
            kind: StorageFaultKind::DuplicatedFrame,
            frame_pick: 1,
            byte_pick: 0,
            bit_pick: 0,
        };
        let mut bytes = log.bytes().to_vec();
        assert!(apply_strike(&mut bytes, &strike));
        let scan = scan(&bytes);
        assert_eq!(scan.anomaly, None);
        assert_eq!(scan.duplicates_dropped, 1);
        assert_eq!(scan.records, records);
    }

    #[test]
    fn seal_verifies_the_prefix_it_covers() {
        let records = sample_records();
        let mut log = DurableLog::new();
        for r in &records[..6] {
            log.append(r);
        }
        let seal = log.seal();
        for r in &records[6..] {
            log.append(r);
        }
        // The seal still verifies against the grown log…
        assert!(seal.verifies(log.bytes()));
        assert!(log.seal().verifies(log.bytes()));
        // …fails once the covered prefix is damaged…
        let mut bad = log.bytes().to_vec();
        bad[FRAME_HEADER_BYTES] ^= 0x40;
        assert!(!seal.verifies(&bad));
        // …and a corrupted seal fails before touching the log.
        assert!(!seal.corrupted().self_consistent());
        assert!(!seal.corrupted().verifies(log.bytes()));
    }

    #[test]
    fn strikes_on_tiny_logs_are_safe() {
        let mut empty: Vec<u8> = Vec::new();
        for kind in StorageFaultKind::ALL {
            let strike = StorageStrike {
                kind,
                frame_pick: 1,
                byte_pick: 1,
                bit_pick: 1,
            };
            assert!(!apply_strike(&mut empty, &strike) || kind == StorageFaultKind::TornTail);
        }
        // A single-frame log: interior modes have no target.
        let log = log_of(&[JournalRecord::Checkpoint]);
        for kind in [
            StorageFaultKind::BitFlip,
            StorageFaultKind::DroppedWrite,
            StorageFaultKind::DuplicatedFrame,
        ] {
            let mut bytes = log.bytes().to_vec();
            let strike = StorageStrike {
                kind,
                frame_pick: 0,
                byte_pick: 0,
                bit_pick: 0,
            };
            assert!(!apply_strike(&mut bytes, &strike));
            assert_eq!(bytes, log.bytes());
        }
    }
}
