//! Crash injection, journal-replay recovery, and the cluster failover
//! hooks: the [`WorkerServer`] methods that kill components, prove the
//! replayed journal against its live witnesses, reboot the pristine
//! process image, and hand stranded work to the tier above. A child
//! module of `server`, so it shares the same privacy domain without
//! growing the hot-path module.

use jord_hw::types::{CoreId, PdId};
use jord_hw::CrashScope;
use jord_sim::{SimDuration, SimTime};

use std::collections::BTreeMap;

use crate::durability::{self, FrameAnomaly, ScanReport};
use crate::events::{AbortCause, LifecycleEvent, RetryKind};
use crate::invocation::{Invocation, InvocationId, Origin, Phase};
use crate::journal::{InvocationJournal, PendingRetry, RecoveredState, WorkerCheckpoint};
use crate::lifecycle::InvocationState;
use crate::recovery::{CrashSemantics, RecoveryRung};
use crate::stats::RunReport;

use super::{Event, StrandedRequest, WorkerServer};

impl WorkerServer {
    // ------------------------------------------------------------------
    // Crash injection + recovery (journal, checkpoints, reboot)
    // ------------------------------------------------------------------

    /// In-flight semantics across crashes (at-least-once when no crash
    /// config exists — the paths below only run when one does).
    fn crash_semantics(&self) -> CrashSemantics {
        self.cfg
            .crash
            .map(|c| c.semantics)
            .unwrap_or(CrashSemantics::AtLeastOnce)
    }

    /// Downtime of a crashed component before it serves again.
    fn restart_penalty(&self) -> SimDuration {
        SimDuration::from_ns_f64(
            self.cfg.crash.map(|c| c.restart_penalty_us).unwrap_or(0.0) * 1_000.0,
        )
    }

    /// Checkpoints after `checkpoint_every` journal records accumulate.
    pub(super) fn maybe_checkpoint(&mut self, t: SimTime) {
        let Some(cc) = self.cfg.crash else { return };
        if self.bus.due_checkpoint(cc.checkpoint_every) {
            self.take_checkpoint(t);
        }
    }

    /// Snapshots the worker's hot state: the report, RNG streams, warmup
    /// progress, the journal's live tables, and the VMA-table image whose
    /// durable footprint a post-crash reboot must reproduce. Checkpointing
    /// is free in simulated time (a real implementation would write it
    /// off the critical path).
    pub(super) fn take_checkpoint(&mut self, t: SimTime) {
        let Some(img) = self.bus.checkpoint_image() else {
            return;
        };
        let cp = WorkerCheckpoint {
            taken_at: t,
            at_record: img.at_record,
            report: img.report,
            rng: self.rng.clone(),
            injector: self.injector.clone(),
            warmed: img.warmed,
            in_flight: img.in_flight,
            pending: img.pending,
            vma: self.privlib.table_snapshot(),
            free_slots: self.privlib.free_slot_counts(),
            live_pds: self.privlib.live_pd_ids(),
            queue_depths: self
                .orchs
                .iter()
                .map(|o| (o.external.len(), o.internal.len()))
                .collect(),
            seal: img.seal,
        };
        // Keep one generation of history: the recovery ladder falls back
        // to the previous checkpoint when the newest seal fails.
        self.prev_checkpoint = self.checkpoint.take();
        self.checkpoint = Some(cp);
    }

    /// Fires the armed crash at `t` (an event boundary, so every live
    /// invocation is exactly Queued, Suspended, or Faulted).
    pub(super) fn crash_now(&mut self, t: SimTime, scope: CrashScope) {
        self.emit(LifecycleEvent::Crashed {
            scope: scope.label(),
        });
        match scope {
            CrashScope::Executor(e) => self.crash_executor(t, e),
            CrashScope::Orchestrator(o) => self.crash_orchestrator(t, o),
            CrashScope::Worker => self.crash_worker(t),
        }
    }

    /// Settles a crash-killed external request per the semantics knob
    /// (re-admit or fail); crash-killed internal work propagates failure
    /// to the parent like any faulted child. `inv` is already out of the
    /// slab.
    pub(super) fn conclude_crashed(
        &mut self,
        t: SimTime,
        core: CoreId,
        inv: Invocation,
        id: InvocationId,
    ) {
        match inv.origin {
            Origin::External { orch, arrival } => {
                // Never-dispatched requests (still in an orchestrator
                // deque) were not counted in flight.
                if inv.executor != usize::MAX {
                    self.orchs[orch].in_flight -= 1;
                }
                match self.crash_semantics() {
                    CrashSemantics::AtLeastOnce => {
                        // Re-admission is not the request's fault: it keeps
                        // its attempt count and shows up in
                        // `crash.readmitted`, not `faults.retries`.
                        let due = t + self.restart_penalty();
                        let token = self.lifecycle.alloc_token();
                        self.emit(LifecycleEvent::RetryScheduled {
                            req: inv.req,
                            id,
                            token,
                            retry: PendingRetry {
                                func: inv.func,
                                bytes: inv.argbuf.len(),
                                arrival,
                                attempt: inv.attempt,
                                tag: inv.tag,
                                due,
                            },
                            kind: RetryKind::CrashReadmit,
                            measured: false,
                        });
                        self.queue.push(
                            due,
                            Event::Retry {
                                req: inv.req,
                                func: inv.func,
                                bytes: inv.argbuf.len(),
                                arrival,
                                attempt: inv.attempt,
                                token,
                                tag: inv.tag,
                            },
                        );
                    }
                    CrashSemantics::AtMostOnce => {
                        let measured = self.measuring();
                        self.emit(LifecycleEvent::Failed {
                            req: inv.req,
                            id,
                            tag: inv.tag,
                            at: t,
                            measured,
                            notify: true,
                        });
                    }
                }
            }
            Origin::Internal { parent, .. } => {
                self.deliver_child_result(t, core, parent, id, inv.argbuf, true);
            }
        }
    }

    /// Kills executor `e`: every invocation resident on it dies. Queued
    /// work never started (reclaim its ArgBuf, settle per semantics);
    /// suspended continuations tear down through the abort path with the
    /// `crash_kill` flag steering their conclusion.
    fn crash_executor(&mut self, t: SimTime, e: usize) {
        let core = self.execs[e].core;
        let mut killed = 0u64;
        for id in self.slab.ids() {
            // An earlier kill in this sweep may have concluded this entry
            // (a queued child draining its crash-killed parent).
            if !self.slab.contains(id) {
                continue;
            }
            let (exec_idx, phase, pd_active) = {
                let inv = self.slab.get(id);
                (inv.executor, inv.phase, inv.pd_active)
            };
            if exec_idx != e || phase == Phase::Faulted {
                continue;
            }
            killed += 1;
            if pd_active {
                self.slab.get_mut(id).crash_kill = true;
                self.abort(t, SimDuration::ZERO, e, id, AbortCause::Crash);
            } else {
                let inv = self.slab.remove(id);
                // Externals own their ingested ArgBuf; internal buffers
                // travel back to the parent via conclude_crashed.
                if matches!(inv.origin, Origin::External { .. }) && inv.argbuf.va() != 0 {
                    self.privlib
                        .munmap(&mut self.machine, core, inv.argbuf.va(), PdId::RUNTIME)
                        .expect("crashed ArgBuf reclaim");
                }
                self.conclude_crashed(t, core, inv, id);
            }
        }
        self.emit(LifecycleEvent::CrashKilled { count: killed });
        self.execs[e].queue.clear();
        self.execs[e].ready.clear();
        self.execs[e].next_free = t + self.restart_penalty();
    }

    /// Kills orchestrator `o`: only its *queued* work dies — requests it
    /// already dispatched keep running on their executors. Externals settle
    /// per semantics; internals propagate failure to their parents.
    fn crash_orchestrator(&mut self, t: SimTime, o: usize) {
        let core = self.orchs[o].core;
        let externals: Vec<InvocationId> = self.orchs[o].external.drain(..).collect();
        let internals: Vec<InvocationId> = self.orchs[o].internal.drain(..).collect();
        self.emit(LifecycleEvent::CrashKilled {
            count: (externals.len() + internals.len()) as u64,
        });
        for id in externals {
            let inv = self.slab.remove(id);
            // A requeued request may already hold an ingested ArgBuf.
            if inv.argbuf.va() != 0 {
                self.privlib
                    .munmap(&mut self.machine, core, inv.argbuf.va(), PdId::RUNTIME)
                    .expect("crashed ArgBuf reclaim");
            }
            self.conclude_crashed(t, core, inv, id);
        }
        for id in internals {
            let inv = self.slab.remove(id);
            let Origin::Internal { parent, .. } = inv.origin else {
                unreachable!("internal deque holds only internal requests");
            };
            self.deliver_child_result(t, core, parent, id, inv.argbuf, true);
        }
        self.orchs[o].next_free = t + self.restart_penalty();
    }

    /// Replays the journal suffix over `checkpoint` and proves the
    /// replayed tables against three independent witnesses: the journal's
    /// live tables, the slab's external population, and the lifecycle
    /// engine's request rows.
    fn replay_and_prove(&mut self, checkpoint: &WorkerCheckpoint) -> RecoveredState {
        let (recovered, live_in_flight, live_pending) = {
            let j = self
                .bus
                .journal()
                .expect("worker crash requires the journal");
            let rec = j.replay(checkpoint);
            (
                rec,
                j.in_flight().keys().copied().collect::<Vec<_>>(),
                j.pending().keys().copied().collect::<Vec<_>>(),
            )
        };
        assert_eq!(
            recovered.in_flight.keys().copied().collect::<Vec<_>>(),
            live_in_flight,
            "replayed in-flight table must match the journal's live table"
        );
        assert_eq!(
            recovered.pending.keys().copied().collect::<Vec<_>>(),
            live_pending,
            "replayed pending-retry table must match the journal's live table"
        );
        let mut slab_externals: Vec<usize> = self
            .slab
            .iter()
            .filter(|(_, inv)| matches!(inv.origin, Origin::External { .. }))
            .map(|(id, _)| id.0)
            .collect();
        slab_externals.sort_unstable();
        assert_eq!(
            live_in_flight, slab_externals,
            "journal in-flight table must mirror the slab's external population"
        );
        assert_eq!(
            self.lifecycle.live_slab_ids(),
            live_in_flight,
            "lifecycle engine's admitted rows must mirror the journal's in-flight table"
        );
        assert_eq!(
            self.lifecycle.live_tokens(),
            live_pending,
            "lifecycle engine's retry-wait rows must mirror the journal's pending table"
        );
        self.emit(LifecycleEvent::Replayed {
            records: recovered.replayed,
        });
        recovered
    }

    /// Applies the armed storage fault (if any) to the durable log image,
    /// scans the result frame by frame, and chooses the recovery ladder
    /// rung: which checkpoint (if any) recovery may trust, and whether
    /// the replayable suffix is exact or lossy. Emits the integrity
    /// events ([`JournalScanned`](LifecycleEvent::JournalScanned),
    /// [`CheckpointSealChecked`](LifecycleEvent::CheckpointSealChecked),
    /// [`RecoveryRungTaken`](LifecycleEvent::RecoveryRungTaken)) along
    /// the way.
    fn storage_recovery_plan(&mut self) -> (ScanReport, RecoveryRung, Option<WorkerCheckpoint>) {
        let cc = self.cfg.crash.expect("recovery requires a crash config");
        let mut log: Vec<u8> = self
            .bus
            .journal()
            .expect("recovery requires the journal")
            .durable_log()
            .bytes()
            .to_vec();
        let mut current = self
            .checkpoint
            .clone()
            .expect("journaled runs checkpoint at start");
        if let Some(plan) = cc.storage {
            let strike = plan.strike(&mut self.rng);
            if !durability::apply_strike(&mut log, &strike) {
                // TruncatedCheckpoint: the log survived but the newest
                // checkpoint image did not — its seal no longer verifies.
                current.seal = current.seal.corrupted();
            }
        }
        let scan = durability::scan(&log);
        self.emit(LifecycleEvent::JournalScanned {
            frames_verified: scan.frames_verified,
            frames_quarantined: scan.frames_quarantined(),
            truncated_bytes: scan.truncated_bytes,
            duplicates_dropped: scan.duplicates_dropped,
        });
        let current_ok = current.seal.verifies(&log);
        self.emit(LifecycleEvent::CheckpointSealChecked { ok: current_ok });
        let (rung, base) = if current_ok {
            let rung = match scan.anomaly {
                None => RecoveryRung::ExactReplay,
                Some(FrameAnomaly::TornTail) => RecoveryRung::TornTail,
                Some(_) => RecoveryRung::Quarantine,
            };
            (rung, Some(current))
        } else {
            // The newest checkpoint is untrustworthy; try the previous
            // one, then give up and reboot empty.
            match self.prev_checkpoint.clone() {
                Some(prev) => {
                    let prev_ok = prev.seal.verifies(&log);
                    self.emit(LifecycleEvent::CheckpointSealChecked { ok: prev_ok });
                    if prev_ok {
                        (RecoveryRung::CheckpointFallback, Some(prev))
                    } else {
                        (RecoveryRung::PristineReboot, None)
                    }
                }
                None => (RecoveryRung::PristineReboot, None),
            }
        };
        self.emit(LifecycleEvent::RecoveryRungTaken { rung });
        (scan, rung, base)
    }

    /// Reconstructs the pre-crash ledger along the chosen rung.
    ///
    /// * Exact replay re-runs the existing proof-carrying path (and first
    ///   checks the scanned frames decode to the in-memory record list —
    ///   the codec's end-to-end witness).
    /// * Lossy rungs with a trusted base checkpoint replay whatever
    ///   verified suffix the scan salvaged over that base.
    /// * The pristine rung reconstructs nothing: empty ledger, empty
    ///   tables.
    fn recover_via(
        &mut self,
        scan: &ScanReport,
        rung: RecoveryRung,
        base: Option<&WorkerCheckpoint>,
    ) -> RecoveredState {
        match (rung, base) {
            (RecoveryRung::ExactReplay, Some(base)) => {
                {
                    let j = self.bus.journal().expect("recovery requires the journal");
                    assert_eq!(
                        scan.records.as_slice(),
                        j.records(),
                        "a clean scan must decode to the in-memory record list"
                    );
                }
                self.replay_and_prove(base)
            }
            (_, Some(base)) => {
                let recovered = InvocationJournal::replay_records(&scan.records, base);
                self.emit(LifecycleEvent::Replayed {
                    records: recovered.replayed,
                });
                recovered
            }
            (_, None) => RecoveredState {
                report: RunReport::new(),
                warmed: 0,
                in_flight: BTreeMap::new(),
                pending: BTreeMap::new(),
                replayed: 0,
            },
        }
    }

    /// Reboots the pristine process image and — when a trusted checkpoint
    /// survives — checks it reproduces the checkpoint's durable
    /// (privileged/global) mappings bit-for-bit. `None` is the pristine
    /// rung: nothing durable verified, so there is nothing to check
    /// against.
    fn reboot(&mut self, checkpoint: Option<&WorkerCheckpoint>) {
        let parts =
            Self::boot_parts(&self.cfg, &self.registry).expect("reboot of a validated config");
        self.machine = parts.machine;
        self.privlib = parts.privlib;
        self.code_vmas = parts.code_vmas;
        self.privlib_code = parts.privlib_code;
        self.orchs = parts.orchs;
        self.execs = parts.execs;
        self.admission.reset_routing();
        let Some(checkpoint) = checkpoint else { return };
        assert_eq!(
            self.privlib.table_snapshot().durable_footprint(),
            checkpoint.vma.durable_footprint(),
            "reboot must reproduce the checkpoint's durable mappings"
        );
        for (class, (&now_free, &cp_free)) in self
            .privlib
            .free_slot_counts()
            .iter()
            .zip(checkpoint.free_slots.iter())
            .enumerate()
        {
            assert!(
                now_free >= cp_free,
                "size class {class}: rebooted free slots {now_free} < checkpoint's {cp_free}"
            );
        }
    }

    /// Kills the whole worker process and recovers it: replay the journal
    /// suffix over the latest checkpoint (proving the replayed tables
    /// against the journal's live tables, the slab, and the lifecycle
    /// engine), reboot a pristine process image (validating its durable
    /// VMA footprint against the checkpoint's), restore the replayed
    /// ledger, and settle every interrupted request per the semantics
    /// knob.
    fn crash_worker(&mut self, t: SimTime) {
        let cc = self
            .cfg
            .crash
            .expect("worker crash requires a crash config");
        self.emit(LifecycleEvent::CrashKilled {
            count: self.slab.len() as u64,
        });

        // Scan the (possibly storage-struck) durable log, pick the
        // recovery rung, and reconstruct whatever ledger the surviving
        // bytes prove.
        let (scan, rung, base) = self.storage_recovery_plan();
        let recovered = self.recover_via(&scan, rung, base.as_ref());

        // Settlement drives off the journal's *live* tables — the full
        // truth of what was unfinished at the crash. On the exact rung
        // these provably equal the replayed tables (`replay_and_prove`);
        // on lossy rungs, entries the salvaged suffix cannot prove are
        // demoted below.
        let (live_in_flight, live_pending) = {
            let j = self.bus.journal().expect("recovery requires the journal");
            (
                j.in_flight().values().copied().collect::<Vec<_>>(),
                j.pending()
                    .iter()
                    .map(|(&token, &r)| (token, r))
                    .collect::<Vec<_>>(),
            )
        };

        // The process dies: every continuation, queue entry, and pooled PD
        // evaporates — claims included, since the claimants died too.
        // Undelivered network arrivals are the only survivors — they
        // exist outside the crashed process.
        self.slab.clear();
        self.pd_pool = crate::memory::PdPool::new(self.registry.len());
        let survivors: Vec<(SimTime, Event)> = self
            .queue
            .drain()
            .into_iter()
            .filter(|(_, ev)| matches!(ev, Event::Arrival { .. }))
            .collect();
        self.arrival_eids.clear();
        for (at, ev) in survivors {
            let eid = self.queue.schedule(at, ev);
            if let Event::Arrival { req, .. } = ev {
                self.arrival_eids.insert(req, eid);
            }
        }

        self.reboot(base.as_ref());

        // Restore the reconstructed ledger. A lossy rung's report may
        // miss tail records (offers never replay — they are not
        // journaled — and lost terminals cannot be resurrected), so
        // re-base `offered` on what the restored books can still settle:
        // the terminals they already count plus every live request row,
        // each of which terminalizes exactly once after the restart. On
        // the exact rung this is an identity.
        let mut report = recovered.report;
        let settled = report.completed + report.faults.failed + report.faults.sheds;
        let live_rows = self.lifecycle.len() as u64;
        if rung.lossy() {
            report.offered = settled + live_rows;
        } else {
            debug_assert_eq!(
                report.offered,
                settled + live_rows,
                "exact replay reconstructs offered = settled + live rows"
            );
        }
        self.bus.restore(report, recovered.warmed);
        if let Some(base) = &base {
            self.rng = base.rng.clone();
            self.injector = base.injector.clone();
        }

        // Settle interrupted work.
        let restart = t + self.restart_penalty();
        match cc.semantics {
            CrashSemantics::AtLeastOnce => {
                // In-flight requests re-enter once the worker restarts;
                // already-pending retries keep their token (and journal
                // record) and fire no earlier than the restart.
                for p in &live_in_flight {
                    let req = self
                        .lifecycle
                        .req_of_slab(p.id)
                        .expect("every live in-flight entry has a request row");
                    if rung.lossy() && !recovered.in_flight.contains_key(&p.id.0) {
                        self.emit(LifecycleEvent::WorkDemoted { req, readmit: true });
                    }
                    let token = self.lifecycle.alloc_token();
                    self.emit(LifecycleEvent::RetryScheduled {
                        req,
                        id: p.id,
                        token,
                        retry: PendingRetry {
                            func: p.func,
                            bytes: p.bytes,
                            arrival: p.arrival,
                            attempt: p.attempt,
                            tag: p.tag,
                            due: restart,
                        },
                        kind: RetryKind::CrashReadmit,
                        measured: false,
                    });
                    self.queue.push(
                        restart,
                        Event::Retry {
                            req,
                            func: p.func,
                            bytes: p.bytes,
                            arrival: p.arrival,
                            attempt: p.attempt,
                            token,
                            tag: p.tag,
                        },
                    );
                }
                for &(token, r) in &live_pending {
                    // The row is already RetryWait (the RetryScheduled that
                    // created the token happened before the crash), so only
                    // the timer event is re-armed — no new transition.
                    let req = self
                        .lifecycle
                        .req_of_token(token)
                        .expect("every live pending entry has a request row");
                    if rung.lossy() && !recovered.pending.contains_key(&token) {
                        self.emit(LifecycleEvent::WorkDemoted { req, readmit: true });
                    }
                    self.queue.push(
                        r.due.max(restart),
                        Event::Retry {
                            req,
                            func: r.func,
                            bytes: r.bytes,
                            arrival: r.arrival,
                            attempt: r.attempt,
                            token,
                            tag: r.tag,
                        },
                    );
                }
            }
            CrashSemantics::AtMostOnce => {
                // Every interrupted request — in flight or awaiting a
                // retry — terminally fails. Interrupted work reports
                // through the ledger only (no notices): the tier above
                // learns about it from the stranded-request path.
                for p in &live_in_flight {
                    let measured = self.measuring();
                    let req = self
                        .lifecycle
                        .req_of_slab(p.id)
                        .expect("every live in-flight entry has a request row");
                    if rung.lossy() && !recovered.in_flight.contains_key(&p.id.0) {
                        self.emit(LifecycleEvent::WorkDemoted {
                            req,
                            readmit: false,
                        });
                    }
                    self.emit(LifecycleEvent::Failed {
                        req,
                        id: p.id,
                        tag: p.tag,
                        at: t,
                        measured,
                        notify: false,
                    });
                }
                for &(token, _) in &live_pending {
                    let measured = self.measuring();
                    let req = self
                        .lifecycle
                        .req_of_token(token)
                        .expect("every live pending entry has a request row");
                    if rung.lossy() && !recovered.pending.contains_key(&token) {
                        self.emit(LifecycleEvent::WorkDemoted {
                            req,
                            readmit: false,
                        });
                    }
                    self.emit(LifecycleEvent::RetryDropped {
                        req,
                        token,
                        measured,
                    });
                }
            }
        }
        // Re-checkpoint immediately: a second crash must replay against
        // the rebooted image, not pre-crash state.
        self.take_checkpoint(restart);
    }

    // ------------------------------------------------------------------
    // Cluster hooks: tagged cancellation, drain inspection, failover
    // ------------------------------------------------------------------

    /// Request states the tier above may still withdraw: an undelivered
    /// network arrival (`Offered`) or a copy queued in an orchestrator
    /// deque (`Queued`). Anything later is already running.
    const CANCELLABLE: [InvocationState; 2] = [InvocationState::Offered, InvocationState::Queued];

    /// Tags of every tagged external request that has not yet been
    /// dispatched to an executor: undelivered network arrivals plus
    /// requests still sitting in an orchestrator deque. A cluster drain
    /// pulls these to rebalance them onto other workers. Read straight
    /// off the lifecycle engine's request table — the same rows
    /// [`cancel_tagged`](Self::cancel_tagged) and
    /// [`crash_for_cluster`](Self::crash_for_cluster) operate on.
    pub fn queued_tags(&self) -> Vec<u64> {
        self.lifecycle
            .tagged_in(&Self::CANCELLABLE)
            .map(|row| row.tag)
            .collect()
    }

    /// Best-effort cancellation of the tagged request copy on this
    /// worker. Only a copy that has not been dispatched yet can be
    /// cancelled: an undelivered network arrival, or a request still
    /// queued in an orchestrator deque. A running copy is left to
    /// finish — the cluster counts its eventual notice as a duplicate.
    /// Cancellation un-offers the request so the worker-level
    /// conservation invariant (`offered == completed + failed + shed`)
    /// keeps holding without a terminal notice.
    pub fn cancel_tagged(&mut self, tag: u64) -> bool {
        debug_assert_ne!(tag, 0, "tag 0 means untagged");
        let Some(row) = self.lifecycle.find_tagged(tag, &Self::CANCELLABLE) else {
            return false;
        };
        match row.state {
            InvocationState::Offered => {
                // An undelivered arrival: no invocation exists yet, so the
                // withdrawal only unwinds the ledger (nothing was
                // journaled). The handle recorded at schedule time makes
                // this an O(1) tombstone cancel — no queue scan, no
                // rebuild.
                let eid = self
                    .arrival_eids
                    .remove(&row.req)
                    .expect("an Offered row always has its arrival handle");
                let outcome = self.queue.cancel(eid);
                debug_assert!(
                    outcome.is_cancelled(),
                    "an Offered row always has its arrival in the event queue"
                );
                self.emit(LifecycleEvent::Cancelled {
                    req: row.req,
                    id: None,
                    tag,
                });
            }
            InvocationState::Queued => {
                // A queued, never-dispatched copy in an orchestrator
                // deque: remove it, reclaim its ArgBuf, and journal the
                // cancellation so a later replay un-offers it the same
                // way.
                let id = row.slab.expect("a Queued row has a slab entry");
                let Origin::External { orch, .. } = self.slab.get(id).origin else {
                    unreachable!("request rows track external invocations only");
                };
                let pos = self.orchs[orch]
                    .external
                    .iter()
                    .position(|&qid| qid == id)
                    .expect("a Queued row sits in its orchestrator's deque");
                self.orchs[orch]
                    .external
                    .remove(pos)
                    .expect("position is in range");
                let inv = self.slab.remove(id);
                let core = self.orchs[orch].core;
                if inv.argbuf.va() != 0 {
                    self.privlib
                        .munmap(&mut self.machine, core, inv.argbuf.va(), PdId::RUNTIME)
                        .expect("cancelled ArgBuf reclaim");
                }
                self.emit(LifecycleEvent::Cancelled {
                    req: row.req,
                    id: Some(id),
                    tag,
                });
            }
            state => unreachable!("CANCELLABLE rows are Offered or Queued, not {state:?}"),
        }
        true
    }

    /// Kills and recovers this worker on behalf of a cluster dispatcher.
    ///
    /// Same recovery discipline as a standalone worker crash — replay
    /// the journal suffix over the latest checkpoint (proving the
    /// replayed tables against the live tables and the slab), reboot a
    /// pristine image, validate its durable VMA footprint — but instead
    /// of settling interrupted requests locally, every tagged request
    /// the crash stranded (in flight, awaiting a local retry, or still
    /// undelivered in the network queue) is returned to the caller so
    /// the dispatcher can re-route or fail it cluster-wide.
    ///
    /// The worker restarts empty: fresh journal (the old one's records
    /// are retired into the report counters), fresh checkpoint, and
    /// `offered` rebased to the terminal counters so the conservation
    /// invariant holds even though cluster arrivals are pushed
    /// dynamically rather than pre-loaded.
    pub fn crash_for_cluster(&mut self, t: SimTime) -> Vec<StrandedRequest> {
        self.emit(LifecycleEvent::Crashed {
            scope: "cluster-worker",
        });
        self.emit(LifecycleEvent::CrashKilled {
            count: self.slab.len() as u64,
        });

        // Scan, pick the rung, and reconstruct, exactly as in
        // `crash_worker`. A worker whose journal is unrecoverable
        // (pristine rung) restarts with empty books — like a phi-evicted
        // worker, its unfinished work re-derives through the stranding
        // below and the dispatcher's cross-worker retry.
        let (scan, rung, base) = self.storage_recovery_plan();
        let recovered = self.recover_via(&scan, rung, base.as_ref());

        // Everything in the process dies. Unlike a standalone crash,
        // undelivered arrivals do not survive in place: the outside
        // world is the dispatcher, which re-routes them.
        self.slab.clear();
        self.pd_pool = crate::memory::PdPool::new(self.registry.len());
        let _ = self.queue.drain();
        self.arrival_eids.clear();

        // Every unfinished request — undelivered arrival (`Offered`),
        // queued/in-flight (`Queued`/`InFlight`), or awaiting a local
        // retry (`RetryWait`) — reads straight out of the lifecycle
        // engine's request table; draining it leaves the rebooted worker
        // with an empty ledger. Undelivered arrivals re-anchor at the
        // crash instant (they had not been received by the dead process).
        let mut stranded: Vec<StrandedRequest> = Vec::new();
        for row in self.lifecycle.drain_rows() {
            if row.state != InvocationState::Offered {
                debug_assert_ne!(row.tag, 0, "cluster-mode requests are always tagged");
            }
            if row.tag == 0 {
                continue;
            }
            stranded.push(StrandedRequest {
                tag: row.tag,
                func: row.func,
                bytes: row.bytes,
                arrival: if row.state == InvocationState::Offered {
                    t
                } else {
                    row.arrival
                },
            });
        }

        self.reboot(base.as_ref());

        // Restore the replayed ledger. Cluster arrivals are pushed
        // dynamically (never pre-loaded), so the checkpointed `offered`
        // undercounts by whatever was in the network at checkpoint
        // time; the stranded requests leave this worker's books
        // entirely, so rebase `offered` on the terminal counters. (On a
        // lossy rung the terminals themselves may undercount — the
        // dispatcher's notice-driven ledger, not this worker's books, is
        // what the cluster conservation invariant audits.)
        self.bus.restore_rebased(recovered.report, recovered.warmed);
        if let Some(base) = &base {
            self.rng = base.rng.clone();
            self.injector = base.injector.clone();
        }

        // Retire the dead process's journal into the cumulative
        // counters and start a fresh one for the rebooted image: the
        // stranded requests are the dispatcher's problem now, so the
        // new journal's live tables are rightly empty.
        self.bus.retire_journal();
        self.checkpoint = None;
        self.take_checkpoint(t);
        stranded
    }
}
