//! Property-based tests for the VMA machinery.
//!
//! The two load-bearing invariants:
//! 1. the VA codec is a bijection on its domain (translation correctness
//!    depends on it), and
//! 2. the plain-list and B-tree tables are observationally equivalent under
//!    any operation sequence (Jord and Jord_BT differ only in cost, never
//!    in semantics).

use proptest::prelude::*;

use jord_hw::types::{PdId, Perm};
use jord_vma::{BTreeTable, PlainListTable, SizeClass, VaCodec, VmaTable, VteAttr};

fn arb_size_class() -> impl Strategy<Value = SizeClass> {
    (0u8..26).prop_map(|k| SizeClass::from_index(k).unwrap())
}

fn arb_perm() -> impl Strategy<Value = Perm> {
    (1u8..8).prop_map(Perm::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_roundtrip(sc in arb_size_class(), index in 0u32..4096, frac in 0.0f64..1.0) {
        let codec = VaCodec::isca25();
        let index = index % codec.capacity(sc);
        let offset = (frac * sc.bytes() as f64) as u64;
        let offset = offset.min(sc.bytes() - 1);
        let va = codec.encode(sc, index, offset).unwrap();
        prop_assert!(codec.matches(va));
        prop_assert_eq!(codec.decode(va), Some((sc, index, offset)));
    }

    #[test]
    fn codec_distinct_vmas_never_overlap(
        sc_a in arb_size_class(), ia in 0u32..64,
        sc_b in arb_size_class(), ib in 0u32..64,
    ) {
        let codec = VaCodec::isca25();
        prop_assume!((sc_a, ia) != (sc_b, ib));
        let a = codec.base_of(sc_a, ia).unwrap();
        let b = codec.base_of(sc_b, ib).unwrap();
        let a_end = a + sc_a.bytes();
        let b_end = b + sc_b.bytes();
        prop_assert!(a_end <= b || b_end <= a, "ranges overlap: [{a:#x},{a_end:#x}) vs [{b:#x},{b_end:#x})");
    }

    #[test]
    fn slot_function_injective(sc_a in arb_size_class(), ia in 0u32..4096,
                               sc_b in arb_size_class(), ib in 0u32..4096) {
        let codec = VaCodec::isca25();
        prop_assume!((sc_a, ia) != (sc_b, ib));
        prop_assert_ne!(codec.slot_of(sc_a, ia), codec.slot_of(sc_b, ib));
    }

    #[test]
    fn size_class_for_len_is_minimal_cover(len in 1u64..(4u64 << 30)) {
        let sc = SizeClass::for_len(len).unwrap();
        prop_assert!(sc.bytes() >= len);
        if let Some(smaller) = sc.index().checked_sub(1).and_then(SizeClass::from_index) {
            prop_assert!(smaller.bytes() < len);
        }
    }
}

/// One step of the table-equivalence state machine.
#[derive(Debug, Clone)]
enum Op {
    Insert {
        slot: u8,
        len_frac: f64,
    },
    Remove {
        slot: u8,
    },
    SetPerm {
        slot: u8,
        pd: u16,
        perm: Perm,
    },
    Transfer {
        slot: u8,
        from: u16,
        to: u16,
        mv: bool,
    },
    SetLen {
        slot: u8,
        len_frac: f64,
    },
    SetAttr {
        slot: u8,
        global: bool,
        privileged: bool,
    },
    Lookup {
        slot: u8,
        off_frac: f64,
        pd: u16,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..24, 0.01f64..1.0).prop_map(|(slot, len_frac)| Op::Insert { slot, len_frac }),
        (0u8..24).prop_map(|slot| Op::Remove { slot }),
        (0u8..24, 1u16..6, arb_perm()).prop_map(|(slot, pd, perm)| Op::SetPerm { slot, pd, perm }),
        (0u8..24, 1u16..6, 1u16..6, any::<bool>()).prop_map(|(slot, from, to, mv)| Op::Transfer {
            slot,
            from,
            to,
            mv
        }),
        (0u8..24, 0.01f64..1.0).prop_map(|(slot, len_frac)| Op::SetLen { slot, len_frac }),
        (0u8..24, any::<bool>(), any::<bool>()).prop_map(|(slot, global, privileged)| {
            Op::SetAttr {
                slot,
                global,
                privileged,
            }
        }),
        (0u8..24, 0.0f64..1.0, 0u16..6).prop_map(|(slot, off_frac, pd)| Op::Lookup {
            slot,
            off_frac,
            pd
        }),
    ]
}

/// Maps the abstract slot id onto a concrete (class, index): three classes
/// × eight indices, so sequences collide on slots often enough to hit the
/// interesting transitions.
fn concrete(slot: u8) -> (SizeClass, u32) {
    let sc = SizeClass::from_index([0u8, 3, 7][(slot % 3) as usize]).unwrap();
    (sc, (slot / 3) as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plain_list_and_btree_agree(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let codec = VaCodec::isca25();
        let mut plain = PlainListTable::new(codec, 0x4000_0000);
        let mut btree = BTreeTable::new(codec, 0x8000_0000, 0x9000_0000);
        let mut live = std::collections::HashSet::new();
        let mut acc_p = Vec::new();
        let mut acc_b = Vec::new();

        for op in &ops {
            acc_p.clear();
            acc_b.clear();
            match *op {
                Op::Insert { slot, len_frac } => {
                    let (sc, index) = concrete(slot);
                    if live.contains(&slot) {
                        continue; // both tables would panic on double insert
                    }
                    let len = ((len_frac * sc.bytes() as f64) as u64).clamp(1, sc.bytes());
                    plain.insert(sc, index, len, 0, &mut acc_p);
                    btree.insert(sc, index, len, 0, &mut acc_b);
                    live.insert(slot);
                }
                Op::Remove { slot } => {
                    let (sc, index) = concrete(slot);
                    let a = plain.remove(sc, index, &mut acc_p);
                    let b = btree.remove(sc, index, &mut acc_b);
                    prop_assert_eq!(a, b, "remove disagreement");
                    live.remove(&slot);
                }
                Op::SetPerm { slot, pd, perm } => {
                    let (sc, index) = concrete(slot);
                    let a = plain.set_perm(sc, index, PdId(pd), perm, &mut acc_p);
                    let b = btree.set_perm(sc, index, PdId(pd), perm, &mut acc_b);
                    prop_assert_eq!(a, b, "set_perm disagreement");
                }
                Op::Transfer { slot, from, to, mv } => {
                    let (sc, index) = concrete(slot);
                    let a = plain.transfer_perm(sc, index, PdId(from), PdId(to), Perm::RWX, mv, &mut acc_p);
                    let b = btree.transfer_perm(sc, index, PdId(from), PdId(to), Perm::RWX, mv, &mut acc_b);
                    prop_assert_eq!(a, b, "transfer disagreement");
                }
                Op::SetLen { slot, len_frac } => {
                    let (sc, index) = concrete(slot);
                    let len = ((len_frac * sc.bytes() as f64) as u64).clamp(1, sc.bytes());
                    let a = plain.set_len(sc, index, len, &mut acc_p);
                    let b = btree.set_len(sc, index, len, &mut acc_b);
                    prop_assert_eq!(a, b, "set_len disagreement");
                }
                Op::SetAttr { slot, global, privileged } => {
                    let (sc, index) = concrete(slot);
                    let attr = VteAttr { valid: true, global, privileged, global_perm: Perm::RX };
                    let a = plain.set_attr(sc, index, attr, &mut acc_p);
                    let b = btree.set_attr(sc, index, attr, &mut acc_b);
                    prop_assert_eq!(a, b, "set_attr disagreement");
                }
                Op::Lookup { slot, off_frac, pd } => {
                    let (sc, index) = concrete(slot);
                    let va = codec.base_of(sc, index).unwrap()
                        + (off_frac * sc.bytes() as f64) as u64 % sc.bytes();
                    let a = plain.lookup(va, PdId(pd), &mut acc_p);
                    let b = btree.lookup(va, PdId(pd), &mut acc_b);
                    // Records differ in VTE address (different storage), but
                    // must agree on semantics.
                    match (a, b) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            prop_assert_eq!(x.base, y.base);
                            prop_assert_eq!(x.len, y.len);
                            prop_assert_eq!(x.perm, y.perm);
                            prop_assert_eq!(x.global, y.global);
                            prop_assert_eq!(x.privileged, y.privileged);
                        }
                        (a, b) => prop_assert!(false, "lookup disagreement: {a:?} vs {b:?}"),
                    }
                }
            }
            prop_assert_eq!(plain.live_mappings(), btree.live_mappings());
        }
        btree.check_invariants();
    }

    #[test]
    fn pmove_is_conservative_pcopy_is_additive(
        perm in arb_perm(), from in 1u16..5, to in 5u16..9, mv in any::<bool>()
    ) {
        let codec = VaCodec::isca25();
        let mut t = PlainListTable::new(codec, 0x4000_0000);
        let sc = SizeClass::MIN;
        let mut acc = Vec::new();
        t.insert(sc, 0, 128, 0, &mut acc);
        t.set_perm(sc, 0, PdId(from), perm, &mut acc);
        let before = t.peek(sc, 0).unwrap().sharer_count();
        t.transfer_perm(sc, 0, PdId(from), PdId(to), Perm::RWX, mv, &mut acc).unwrap();
        let vte = t.peek(sc, 0).unwrap();
        prop_assert_eq!(vte.perm_for(PdId(to)), perm);
        if mv {
            prop_assert!(vte.perm_for(PdId(from)).is_none());
            prop_assert_eq!(vte.sharer_count(), before, "pmove conserves sharer count");
        } else {
            prop_assert_eq!(vte.perm_for(PdId(from)), perm);
            prop_assert_eq!(vte.sharer_count(), before + 1, "pcopy adds a sharer");
        }
    }
}
