//! Fragmentation regression: a churn loop of map/unmap over mixed size
//! classes must keep the free lists conserved (no leaked indices), the
//! table occupancy equal to the live set, and the dead bookkeeping
//! bounded — for both the plain-list and B-tree backends. This is the
//! memory-governor's substrate invariant: without it, VMA-table
//! compaction could not promise bounded resident metadata under a week
//! of traffic.

use jord_hw::types::PdId;
use jord_vma::{BTreeTable, FreeLists, PlainListTable, SizeClass, TableAccess, VaCodec, VmaTable};

/// Deterministic splitmix-style generator: the test needs reproducible
/// churn, not statistical quality.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

const STEPS: usize = 4_000;
const COMPACT_EVERY: usize = 512;

fn churn(table: &mut dyn VmaTable, codec: &VaCodec, label: &str) {
    let mut free = FreeLists::new(codec, 0x7000_0000);
    let mut acc: Vec<TableAccess> = Vec::new();
    let classes: Vec<SizeClass> = (0..6u8)
        .map(|k| SizeClass::from_index(k).expect("class in range"))
        .collect();
    let caps: Vec<usize> = classes
        .iter()
        .map(|&sc| codec.capacity(sc) as usize)
        .collect();
    let mut live: Vec<(SizeClass, u32)> = Vec::new();
    let mut rng = Lcg(0x5eed_f00d ^ label.len() as u64);
    let mut peak_live = 0usize;

    for step in 1..=STEPS {
        // Map-biased churn so the live set grows, shrinks, and regrows.
        let map = live.is_empty() || rng.next() % 100 < 55;
        if map {
            let sc = classes[(rng.next() % classes.len() as u64) as usize];
            if let Some(index) = free.pop(sc) {
                let len = 1 + rng.next() % sc.bytes();
                table.insert(sc, index, len, 0, &mut acc);
                live.push((sc, index));
            }
        } else {
            let pos = (rng.next() % live.len() as u64) as usize;
            let (sc, index) = live.swap_remove(pos);
            assert!(
                table.remove(sc, index, &mut acc),
                "{label}: a live mapping must be removable"
            );
            free.push(sc, index);
        }
        peak_live = peak_live.max(live.len());

        // Occupancy: the table agrees with the oracle exactly.
        assert_eq!(
            table.live_mappings(),
            live.len(),
            "{label}: occupancy must track the live set at step {step}"
        );
        // Free-list conservation per class: an index is in the table or
        // on the free list, never both, never neither.
        for (ci, &sc) in classes.iter().enumerate() {
            let in_table = live.iter().filter(|&&(s, _)| s == sc).count();
            assert_eq!(
                free.available(sc) + in_table,
                caps[ci],
                "{label}: class {sc} leaked an index at step {step}"
            );
        }

        if step % COMPACT_EVERY == 0 {
            table.compact(&mut acc);
            // Dead bookkeeping stays bounded by the churn scale: the
            // plain list compacts to zero tombstones; the B-tree keeps
            // only interior holes, which recycling bounds by the peak
            // footprint.
            assert!(
                table.dead_slots() <= 3 * peak_live + 16,
                "{label}: dead bookkeeping ({}) must stay bounded at step {step} (peak live {peak_live})",
                table.dead_slots()
            );
        }
    }

    // Drain everything and compact: occupancy returns to zero, the free
    // lists return to full capacity, and the dead bookkeeping collapses.
    while let Some((sc, index)) = live.pop() {
        assert!(table.remove(sc, index, &mut acc));
        free.push(sc, index);
    }
    let reclaimed = table.compact(&mut acc);
    assert_eq!(table.live_mappings(), 0, "{label}: drained table is empty");
    for (ci, &sc) in classes.iter().enumerate() {
        assert_eq!(
            free.available(sc),
            caps[ci],
            "{label}: class {sc} must be whole again after the drain"
        );
    }
    assert!(
        reclaimed > 0,
        "{label}: a drained table must have something to compact"
    );
    assert!(
        table.dead_slots() <= peak_live,
        "{label}: post-drain dead bookkeeping ({}) must be under the peak live set ({peak_live})",
        table.dead_slots()
    );

    // Compaction must not disturb correctness: a fresh mapping still
    // resolves.
    let sc = classes[0];
    let index = free.pop(sc).expect("capacity restored");
    table.insert(sc, index, 128, 0, &mut acc);
    let base = codec.base_of(sc, index).expect("index valid");
    assert!(
        table.lookup(base, PdId(0), &mut acc).is_some(),
        "{label}: lookups must survive compaction"
    );
}

#[test]
fn plain_list_survives_mixed_class_churn() {
    let codec = VaCodec::isca25();
    let mut table = PlainListTable::new(codec, 0x4000_0000);
    churn(&mut table, &codec, "plain-list");
    // The plain list's compaction is total: no tombstone survives it,
    // and the churn's final probe mapping is live, not dead.
    assert_eq!(table.dead_slots(), 0, "compaction clears every tombstone");
}

#[test]
fn btree_survives_mixed_class_churn() {
    let codec = VaCodec::isca25();
    let mut table = BTreeTable::new(codec, 0x8000_0000, 0x9000_0000);
    churn(&mut table, &codec, "b-tree");
    table.check_invariants();
}
