//! The VMA table entry (Figure 8).
//!
//! Each VTE spans one cache block (512 bits) to avoid false sharing:
//!
//! ```text
//! 511        192 191   128 127     64 63        0
//! +--------------+---------+----------+-----------+
//! |  sub-array   |   ptr   |   offs   | a | bound |
//! +--------------+---------+----------+-----------+
//! ```
//!
//! `offs`/`bound` describe the physical backing and length, `a` holds the
//! attribute bits (Valid, Global, Privilege), and the sub-array packs up to
//! [`SUB_ARRAY_LEN`] (PD id, permission) pairs — "the common case of VMAs
//! with up to 20 sharers". Rarer, wider sharing spills into a complete
//! list reached through `ptr`.
//!
//! If the Global (G) bit is clear, the VTW considers the VTE valid for the
//! executing `ucid` only if a matching sub-array (or overflow) entry exists,
//! and the permission comes from that entry; a G-bit VTE grants its
//! attribute permission to every PD (used for shared read-only code).

use jord_hw::types::{PdId, Perm, Va};

/// Capacity of the in-line (PD, permission) sub-array.
pub const SUB_ARRAY_LEN: usize = 20;

/// Attribute bits of a VTE (the `a` field of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VteAttr {
    /// Entry holds a live mapping.
    pub valid: bool,
    /// Global (G) bit: permission applies to all PDs.
    pub global: bool,
    /// Privilege (P) bit: VMA belongs to PrivLib; only privileged code may
    /// touch it (§4.3).
    pub privileged: bool,
    /// Permission used when `global` is set.
    pub global_perm: Perm,
}

/// One VMA table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vte {
    /// Base virtual address of the VMA.
    pub base: Va,
    /// Requested VMA length in bytes (`bound`); the rest of the size-class
    /// chunk is reserved for future resizing.
    pub len: u64,
    /// Physical backing base (`offs`); timing-neutral bookkeeping here.
    pub phys: u64,
    /// Attribute bits.
    pub attr: VteAttr,
    /// In-line sharer permissions.
    sub_array: [Option<(PdId, Perm)>; SUB_ARRAY_LEN],
    /// Overflow sharer list (`ptr`), allocated only beyond 20 sharers.
    /// Deliberately boxed: like the hardware's `ptr` field, the in-line VTE
    /// stores only a pointer, and the common (≤20 sharer) case stays small.
    #[allow(clippy::box_collection)]
    overflow: Option<Box<Vec<(PdId, Perm)>>>,
}

impl Vte {
    /// Creates a valid VTE with no sharers.
    pub fn new(base: Va, len: u64, phys: u64) -> Self {
        Vte {
            base,
            len,
            phys,
            attr: VteAttr {
                valid: true,
                ..VteAttr::default()
            },
            sub_array: [None; SUB_ARRAY_LEN],
            overflow: None,
        }
    }

    /// The permission `pd` holds on this VMA ([`Perm::NONE`] if unshared).
    pub fn perm_for(&self, pd: PdId) -> Perm {
        if !self.attr.valid {
            return Perm::NONE;
        }
        if self.attr.global {
            return self.attr.global_perm;
        }
        for slot in self.sub_array.iter().flatten() {
            if slot.0 == pd {
                return slot.1;
            }
        }
        if let Some(of) = &self.overflow {
            for &(p, perm) in of.iter() {
                if p == pd {
                    return perm;
                }
            }
        }
        Perm::NONE
    }

    /// Grants (or replaces) `pd`'s permission. Spills to the overflow list
    /// when the sub-array is full. Granting [`Perm::NONE`] revokes.
    pub fn set_perm(&mut self, pd: PdId, perm: Perm) {
        if perm.is_none() {
            self.revoke(pd);
            return;
        }
        // Replace in place if present.
        for (p, existing) in self.sub_array.iter_mut().flatten() {
            if *p == pd {
                *existing = perm;
                return;
            }
        }
        if let Some(of) = &mut self.overflow {
            if let Some(e) = of.iter_mut().find(|(p, _)| *p == pd) {
                e.1 = perm;
                return;
            }
        }
        // Insert into the first free sub-array slot, else overflow.
        for slot in self.sub_array.iter_mut() {
            if slot.is_none() {
                *slot = Some((pd, perm));
                return;
            }
        }
        self.overflow
            .get_or_insert_with(Default::default)
            .push((pd, perm));
    }

    /// Removes `pd`'s permission entirely.
    pub fn revoke(&mut self, pd: PdId) {
        for slot in self.sub_array.iter_mut() {
            if matches!(slot, Some((p, _)) if *p == pd) {
                *slot = None;
                return;
            }
        }
        if let Some(of) = &mut self.overflow {
            of.retain(|(p, _)| *p != pd);
            if of.is_empty() {
                self.overflow = None;
            }
        }
    }

    /// Number of PDs holding a permission (excluding G-bit grants).
    pub fn sharer_count(&self) -> usize {
        self.sub_array.iter().flatten().count() + self.overflow.as_ref().map_or(0, |of| of.len())
    }

    /// True if the overflow (`ptr`) list is in use.
    pub fn uses_overflow(&self) -> bool {
        self.overflow.is_some()
    }

    /// Clears all sharers (used on deallocation before the slot is reused).
    pub fn clear_sharers(&mut self) {
        self.sub_array = [None; SUB_ARRAY_LEN];
        self.overflow = None;
    }

    /// Iterates over every (PD, permission) pair.
    pub fn sharers(&self) -> impl Iterator<Item = (PdId, Perm)> + '_ {
        self.sub_array
            .iter()
            .flatten()
            .copied()
            .chain(self.overflow.iter().flat_map(|of| of.iter().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vte_grants_nothing() {
        let v = Vte::new(0x1000, 256, 0x9000);
        assert_eq!(v.perm_for(PdId(1)), Perm::NONE);
        assert_eq!(v.sharer_count(), 0);
    }

    #[test]
    fn grant_and_revoke() {
        let mut v = Vte::new(0x1000, 256, 0);
        v.set_perm(PdId(1), Perm::RW);
        v.set_perm(PdId(2), Perm::READ);
        assert_eq!(v.perm_for(PdId(1)), Perm::RW);
        assert_eq!(v.perm_for(PdId(2)), Perm::READ);
        assert_eq!(v.sharer_count(), 2);
        v.revoke(PdId(1));
        assert_eq!(v.perm_for(PdId(1)), Perm::NONE);
        assert_eq!(v.sharer_count(), 1);
    }

    #[test]
    fn replace_updates_in_place() {
        let mut v = Vte::new(0, 128, 0);
        v.set_perm(PdId(1), Perm::READ);
        v.set_perm(PdId(1), Perm::RWX);
        assert_eq!(v.perm_for(PdId(1)), Perm::RWX);
        assert_eq!(v.sharer_count(), 1);
    }

    #[test]
    fn granting_none_revokes() {
        let mut v = Vte::new(0, 128, 0);
        v.set_perm(PdId(1), Perm::RW);
        v.set_perm(PdId(1), Perm::NONE);
        assert_eq!(v.sharer_count(), 0);
    }

    #[test]
    fn spills_to_overflow_beyond_20_sharers() {
        let mut v = Vte::new(0, 128, 0);
        for i in 0..SUB_ARRAY_LEN as u16 {
            v.set_perm(PdId(i + 1), Perm::READ);
        }
        assert!(!v.uses_overflow());
        v.set_perm(PdId(100), Perm::RW);
        assert!(v.uses_overflow(), "21st sharer goes through ptr");
        assert_eq!(v.perm_for(PdId(100)), Perm::RW);
        assert_eq!(v.sharer_count(), 21);
        // Revoking the overflow sharer frees the list.
        v.revoke(PdId(100));
        assert!(!v.uses_overflow());
    }

    #[test]
    fn overflow_entry_can_be_updated() {
        let mut v = Vte::new(0, 128, 0);
        for i in 0..SUB_ARRAY_LEN as u16 + 1 {
            v.set_perm(PdId(i + 1), Perm::READ);
        }
        let last = PdId(SUB_ARRAY_LEN as u16 + 1);
        v.set_perm(last, Perm::RWX);
        assert_eq!(v.perm_for(last), Perm::RWX);
        assert_eq!(v.sharer_count(), SUB_ARRAY_LEN + 1);
    }

    #[test]
    fn global_bit_grants_everyone() {
        let mut v = Vte::new(0, 128, 0);
        v.attr.global = true;
        v.attr.global_perm = Perm::RX;
        assert_eq!(v.perm_for(PdId(7)), Perm::RX);
        assert_eq!(v.perm_for(PdId(9999)), Perm::RX);
    }

    #[test]
    fn invalid_vte_grants_nothing() {
        let mut v = Vte::new(0, 128, 0);
        v.set_perm(PdId(1), Perm::RWX);
        v.attr.valid = false;
        assert_eq!(v.perm_for(PdId(1)), Perm::NONE);
    }

    #[test]
    fn sharers_iterates_both_regions() {
        let mut v = Vte::new(0, 128, 0);
        for i in 0..22u16 {
            v.set_perm(PdId(i + 1), Perm::READ);
        }
        assert_eq!(v.sharers().count(), 22);
        v.clear_sharers();
        assert_eq!(v.sharers().count(), 0);
    }
}
