//! The OS-reserved physical memory pool (§4.1/4.4).
//!
//! Jord asks the OS (via the `uat_config` syscall) for pinned physical
//! chunks that back VMAs. Chunks can be non-contiguous and of various
//! sizes; the only rule is that a VMA of size class *S* is backed by a
//! contiguous chunk of at least *S* bytes. When the pool runs dry, PrivLib
//! calls `uat_config` again to refill — the only OS involvement in steady
//! state.

use crate::size_class::SizeClass;

/// A bump allocator over the OS-reserved physical region, refillable in
/// chunks.
#[derive(Debug, Clone)]
pub struct PhysAllocator {
    next: u64,
    limit: u64,
    region_end: u64,
    refills: u64,
    grant_bytes: u64,
}

impl PhysAllocator {
    /// Creates a pool over physical region `[base, base+region_len)`, with
    /// an initial OS grant of `grant_bytes` (further grants of the same
    /// size are modelled by [`refill`](Self::refill)).
    ///
    /// # Panics
    ///
    /// Panics if `grant_bytes` is zero or exceeds the region.
    pub fn new(base: u64, region_len: u64, grant_bytes: u64) -> Self {
        assert!(grant_bytes > 0 && grant_bytes <= region_len);
        PhysAllocator {
            next: base,
            limit: base + grant_bytes,
            region_end: base + region_len,
            refills: 0,
            grant_bytes,
        }
    }

    /// Allocates a contiguous chunk for one VMA of class `sc`.
    ///
    /// Returns `Ok(phys_base)`; `Err(true)` means a refill (an OS call) is
    /// required first; `Err(false)` means the whole reserved region is
    /// exhausted.
    pub fn alloc(&mut self, sc: SizeClass) -> Result<u64, bool> {
        let need = sc.bytes();
        if self.next + need <= self.limit {
            let p = self.next;
            self.next += need;
            return Ok(p);
        }
        Err(self.limit + self.grant_bytes.min(need) <= self.region_end
            || self.next + need <= self.region_end)
    }

    /// Obtains another OS grant (PrivLib's `uat_config` refill path).
    /// Returns `false` if the reserved region is exhausted.
    pub fn refill(&mut self) -> bool {
        if self.limit >= self.region_end {
            return false;
        }
        self.limit = (self.limit + self.grant_bytes).min(self.region_end);
        self.refills += 1;
        true
    }

    /// Number of refills performed so far (each one is an OS round trip).
    pub fn refills(&self) -> u64 {
        self.refills
    }

    /// Bytes still available without a refill.
    pub fn headroom(&self) -> u64 {
        self.limit.saturating_sub(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_within_grant() {
        let mut p = PhysAllocator::new(0x1_0000_0000, 1 << 30, 1 << 20);
        let sc = SizeClass::for_len(4096).unwrap();
        let a = p.alloc(sc).unwrap();
        let b = p.alloc(sc).unwrap();
        assert_eq!(b - a, 4096, "contiguous bump allocation");
    }

    #[test]
    fn refill_extends_pool() {
        let mut p = PhysAllocator::new(0, 1 << 20, 4096);
        let sc = SizeClass::for_len(4096).unwrap();
        p.alloc(sc).unwrap();
        assert!(matches!(p.alloc(sc), Err(true)), "needs refill");
        assert!(p.refill());
        assert!(p.alloc(sc).is_ok());
        assert_eq!(p.refills(), 1);
    }

    #[test]
    fn region_exhaustion_is_terminal() {
        let mut p = PhysAllocator::new(0, 8192, 4096);
        let sc = SizeClass::for_len(4096).unwrap();
        p.alloc(sc).unwrap();
        assert!(p.refill());
        p.alloc(sc).unwrap();
        assert!(!p.refill(), "region fully granted");
        assert!(matches!(p.alloc(sc), Err(false)), "nothing left to grant");
    }

    #[test]
    fn headroom_reports_remaining_grant() {
        let mut p = PhysAllocator::new(0, 1 << 20, 1 << 12);
        assert_eq!(p.headroom(), 4096);
        p.alloc(SizeClass::for_len(128).unwrap()).unwrap();
        assert_eq!(p.headroom(), 4096 - 128);
    }

    #[test]
    #[should_panic]
    fn zero_grant_panics() {
        let _ = PhysAllocator::new(0, 100, 0);
    }
}
