//! The B-tree VMA table — the Jord_BT ablation (§5, Figure 13).
//!
//! Jord can also keep VMAs in a B-tree (as Midgard-style designs do) instead
//! of the plain list. We implement a real B+ tree keyed by VMA base address:
//! leaves hold (base → VTE) bindings, internal nodes hold separators, and
//! every node the walk touches is reported as a [`TableAccess::NodeRead`] /
//! [`TableAccess::NodeWrite`] so the hardware model charges the traversal.
//! VTEs themselves live in a side arena with stable addresses (so VLB/VTD
//! tags survive rebalancing); splits, borrows, and merges touch extra nodes,
//! which is precisely the "+167 % VMA management time, 20 ns VLB miss
//! penalty" effect of Figure 13.
//!
//! Nodes hold up to 6 keys (~2 cache blocks with pointers), mirroring a
//! cache-line-conscious hardware walker.

use jord_hw::types::{PdId, Perm, Va, VteAddr};

use crate::codec::VaCodec;
use crate::size_class::SizeClass;
use crate::table::{TableAccess, VmaRecord, VmaTable};
use crate::vte::{Vte, VteAttr};

/// Maximum keys per node.
const MAX_KEYS: usize = 6;
/// Minimum keys per non-root node.
const MIN_KEYS: usize = MAX_KEYS / 2;
/// Modelled bytes per B-tree node (2 cache blocks).
pub const NODE_BYTES: u64 = 128;

#[derive(Debug, Clone)]
struct Node {
    leaf: bool,
    /// Leaf: entry keys. Internal: separators (`len == children.len() - 1`).
    keys: Vec<u64>,
    /// Leaf only: arena slots, parallel to `keys`.
    vals: Vec<u32>,
    /// Internal only: child node ids.
    children: Vec<u32>,
}

impl Node {
    fn new_leaf() -> Node {
        Node {
            leaf: true,
            keys: Vec::with_capacity(MAX_KEYS + 1),
            vals: Vec::with_capacity(MAX_KEYS + 1),
            children: Vec::new(),
        }
    }

    fn new_internal() -> Node {
        Node {
            leaf: false,
            keys: Vec::with_capacity(MAX_KEYS + 1),
            vals: Vec::new(),
            children: Vec::with_capacity(MAX_KEYS + 2),
        }
    }
}

/// The B+ tree VMA table.
#[derive(Debug)]
pub struct BTreeTable {
    codec: VaCodec,
    node_base: u64,
    arena_base: u64,
    nodes: Vec<Node>,
    free_nodes: Vec<u32>,
    arena: Vec<Option<Vte>>,
    free_arena: Vec<u32>,
    /// Arena slot by (class, index) so the (sc, index)-keyed trait methods
    /// can find their VTE without a tree walk being *hidden* — mutation
    /// paths still walk the tree explicitly to charge realistic traffic.
    slot_of_vma: std::collections::HashMap<(u8, u32), u32>,
    root: u32,
    live: usize,
}

impl BTreeTable {
    /// Creates an empty table; `node_base`/`arena_base` are the memory
    /// regions the index nodes and VTE arena are charged at.
    pub fn new(codec: VaCodec, node_base: u64, arena_base: u64) -> Self {
        BTreeTable {
            codec,
            node_base,
            arena_base,
            nodes: vec![Node::new_leaf()],
            free_nodes: Vec::new(),
            arena: Vec::new(),
            free_arena: Vec::new(),
            slot_of_vma: std::collections::HashMap::new(),
            root: 0,
            live: 0,
        }
    }

    /// The codec used for (class, index) → base translation.
    pub fn codec(&self) -> &VaCodec {
        &self.codec
    }

    fn node_addr(&self, id: u32) -> u64 {
        self.node_base + id as u64 * NODE_BYTES
    }

    fn arena_addr(&self, slot: u32) -> VteAddr {
        VteAddr(self.arena_base + slot as u64 * 64)
    }

    fn alloc_node(&mut self, node: Node) -> u32 {
        if let Some(id) = self.free_nodes.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn alloc_arena(&mut self, vte: Vte) -> u32 {
        if let Some(slot) = self.free_arena.pop() {
            self.arena[slot as usize] = Some(vte);
            slot
        } else {
            self.arena.push(Some(vte));
            (self.arena.len() - 1) as u32
        }
    }

    /// Walks to the leaf containing the greatest key ≤ `key`, charging
    /// NodeReads. Returns the leaf node id.
    fn descend(&self, key: u64, acc: &mut Vec<TableAccess>) -> u32 {
        let mut id = self.root;
        loop {
            acc.push(TableAccess::NodeRead(self.node_addr(id)));
            let node = &self.nodes[id as usize];
            if node.leaf {
                return id;
            }
            let child = node.keys.partition_point(|&k| key >= k);
            id = node.children[child];
        }
    }

    /// Finds the arena slot of the VMA whose range covers `va`.
    fn find_covering(&self, va: Va, acc: &mut Vec<TableAccess>) -> Option<u32> {
        let leaf_id = self.descend(va, acc);
        let leaf = &self.nodes[leaf_id as usize];
        // Greatest key ≤ va within this leaf.
        let pos = leaf.keys.partition_point(|&k| k <= va);
        if pos == 0 {
            return None;
        }
        Some(leaf.vals[pos - 1])
    }

    /// Recursive insert; returns `Some((separator, new_right))` on split.
    fn insert_rec(
        &mut self,
        id: u32,
        key: u64,
        val: u32,
        acc: &mut Vec<TableAccess>,
    ) -> Option<(u64, u32)> {
        acc.push(TableAccess::NodeRead(self.node_addr(id)));
        if self.nodes[id as usize].leaf {
            let node = &mut self.nodes[id as usize];
            let pos = node.keys.partition_point(|&k| k < key);
            debug_assert!(node.keys.get(pos) != Some(&key), "duplicate base");
            node.keys.insert(pos, key);
            node.vals.insert(pos, val);
            acc.push(TableAccess::NodeWrite(self.node_addr(id)));
            if self.nodes[id as usize].keys.len() <= MAX_KEYS {
                return None;
            }
            // Split the leaf.
            let mid = self.nodes[id as usize].keys.len() / 2;
            let mut right = Node::new_leaf();
            right.keys = self.nodes[id as usize].keys.split_off(mid);
            right.vals = self.nodes[id as usize].vals.split_off(mid);
            let sep = right.keys[0];
            let right_id = self.alloc_node(right);
            acc.push(TableAccess::NodeWrite(self.node_addr(id)));
            acc.push(TableAccess::NodeWrite(self.node_addr(right_id)));
            Some((sep, right_id))
        } else {
            let child_pos = self.nodes[id as usize].keys.partition_point(|&k| key >= k);
            let child_id = self.nodes[id as usize].children[child_pos];
            let split = self.insert_rec(child_id, key, val, acc)?;
            let (sep, right_id) = split;
            let addr = self.node_addr(id);
            let node = &mut self.nodes[id as usize];
            node.keys.insert(child_pos, sep);
            node.children.insert(child_pos + 1, right_id);
            acc.push(TableAccess::NodeWrite(addr));
            if node.keys.len() <= MAX_KEYS {
                return None;
            }
            // Split the internal node: middle separator moves up.
            let mid = self.nodes[id as usize].keys.len() / 2;
            let up = self.nodes[id as usize].keys[mid];
            let mut right = Node::new_internal();
            right.keys = self.nodes[id as usize].keys.split_off(mid + 1);
            self.nodes[id as usize].keys.pop();
            right.children = self.nodes[id as usize].children.split_off(mid + 1);
            let right_id = self.alloc_node(right);
            acc.push(TableAccess::NodeWrite(self.node_addr(id)));
            acc.push(TableAccess::NodeWrite(self.node_addr(right_id)));
            Some((up, right_id))
        }
    }

    fn insert_key(&mut self, key: u64, val: u32, acc: &mut Vec<TableAccess>) {
        if let Some((sep, right)) = self.insert_rec(self.root, key, val, acc) {
            let mut new_root = Node::new_internal();
            new_root.keys.push(sep);
            new_root.children.push(self.root);
            new_root.children.push(right);
            self.root = self.alloc_node(new_root);
            acc.push(TableAccess::NodeWrite(self.node_addr(self.root)));
        }
    }

    /// Recursive delete; returns `true` if `id` underflowed.
    fn delete_rec(&mut self, id: u32, key: u64, acc: &mut Vec<TableAccess>) -> bool {
        acc.push(TableAccess::NodeRead(self.node_addr(id)));
        if self.nodes[id as usize].leaf {
            let node = &mut self.nodes[id as usize];
            if let Ok(pos) = node.keys.binary_search(&key) {
                node.keys.remove(pos);
                node.vals.remove(pos);
                acc.push(TableAccess::NodeWrite(self.node_addr(id)));
            }
            self.nodes[id as usize].keys.len() < MIN_KEYS
        } else {
            let child_pos = self.nodes[id as usize].keys.partition_point(|&k| key >= k);
            let child_id = self.nodes[id as usize].children[child_pos];
            if self.delete_rec(child_id, key, acc) {
                self.fix_underflow(id, child_pos, acc);
            }
            let node = &self.nodes[id as usize];
            node.children.len() < MIN_KEYS + 1
        }
    }

    /// Rebalances child `child_pos` of internal node `id` after underflow:
    /// borrow from a sibling if possible, otherwise merge.
    fn fix_underflow(&mut self, id: u32, child_pos: usize, acc: &mut Vec<TableAccess>) {
        let child_id = self.nodes[id as usize].children[child_pos];

        // Try borrowing from the left sibling.
        if child_pos > 0 {
            let left_id = self.nodes[id as usize].children[child_pos - 1];
            acc.push(TableAccess::NodeRead(self.node_addr(left_id)));
            if self.nodes[left_id as usize].keys.len() > MIN_KEYS {
                self.borrow_from_left(id, child_pos, left_id, child_id, acc);
                return;
            }
        }
        // Try borrowing from the right sibling.
        if child_pos + 1 < self.nodes[id as usize].children.len() {
            let right_id = self.nodes[id as usize].children[child_pos + 1];
            acc.push(TableAccess::NodeRead(self.node_addr(right_id)));
            if self.nodes[right_id as usize].keys.len() > MIN_KEYS {
                self.borrow_from_right(id, child_pos, child_id, right_id, acc);
                return;
            }
        }
        // Merge with a sibling.
        if child_pos > 0 {
            let left_id = self.nodes[id as usize].children[child_pos - 1];
            self.merge_children(id, child_pos - 1, left_id, child_id, acc);
        } else {
            let right_id = self.nodes[id as usize].children[child_pos + 1];
            self.merge_children(id, child_pos, child_id, right_id, acc);
        }
    }

    fn borrow_from_left(
        &mut self,
        parent: u32,
        child_pos: usize,
        left: u32,
        child: u32,
        acc: &mut Vec<TableAccess>,
    ) {
        if self.nodes[child as usize].leaf {
            let k = self.nodes[left as usize].keys.pop().expect("donor key");
            let v = self.nodes[left as usize].vals.pop().expect("donor val");
            self.nodes[child as usize].keys.insert(0, k);
            self.nodes[child as usize].vals.insert(0, v);
            self.nodes[parent as usize].keys[child_pos - 1] = k;
        } else {
            let k = self.nodes[left as usize].keys.pop().expect("donor key");
            let c = self.nodes[left as usize]
                .children
                .pop()
                .expect("donor child");
            let sep = std::mem::replace(&mut self.nodes[parent as usize].keys[child_pos - 1], k);
            self.nodes[child as usize].keys.insert(0, sep);
            self.nodes[child as usize].children.insert(0, c);
        }
        acc.push(TableAccess::NodeWrite(self.node_addr(left)));
        acc.push(TableAccess::NodeWrite(self.node_addr(child)));
        acc.push(TableAccess::NodeWrite(self.node_addr(parent)));
    }

    fn borrow_from_right(
        &mut self,
        parent: u32,
        child_pos: usize,
        child: u32,
        right: u32,
        acc: &mut Vec<TableAccess>,
    ) {
        if self.nodes[child as usize].leaf {
            let k = self.nodes[right as usize].keys.remove(0);
            let v = self.nodes[right as usize].vals.remove(0);
            self.nodes[child as usize].keys.push(k);
            self.nodes[child as usize].vals.push(v);
            self.nodes[parent as usize].keys[child_pos] = self.nodes[right as usize].keys[0];
        } else {
            let k = self.nodes[right as usize].keys.remove(0);
            let c = self.nodes[right as usize].children.remove(0);
            let sep = std::mem::replace(&mut self.nodes[parent as usize].keys[child_pos], k);
            self.nodes[child as usize].keys.push(sep);
            self.nodes[child as usize].children.push(c);
        }
        acc.push(TableAccess::NodeWrite(self.node_addr(right)));
        acc.push(TableAccess::NodeWrite(self.node_addr(child)));
        acc.push(TableAccess::NodeWrite(self.node_addr(parent)));
    }

    /// Merges `right` into `left` (children `left_pos` and `left_pos + 1`
    /// of `parent`) and drops the separator.
    fn merge_children(
        &mut self,
        parent: u32,
        left_pos: usize,
        left: u32,
        right: u32,
        acc: &mut Vec<TableAccess>,
    ) {
        let right_node = std::mem::replace(&mut self.nodes[right as usize], Node::new_leaf());
        let sep = self.nodes[parent as usize].keys.remove(left_pos);
        self.nodes[parent as usize].children.remove(left_pos + 1);
        let left_node = &mut self.nodes[left as usize];
        if left_node.leaf {
            left_node.keys.extend(right_node.keys);
            left_node.vals.extend(right_node.vals);
        } else {
            left_node.keys.push(sep);
            left_node.keys.extend(right_node.keys);
            left_node.children.extend(right_node.children);
        }
        self.free_nodes.push(right);
        acc.push(TableAccess::NodeWrite(self.node_addr(left)));
        acc.push(TableAccess::NodeWrite(self.node_addr(parent)));
    }

    fn delete_key(&mut self, key: u64, acc: &mut Vec<TableAccess>) {
        self.delete_rec(self.root, key, acc);
        // Shrink the root if it became a single-child internal node.
        let root = &self.nodes[self.root as usize];
        if !root.leaf && root.children.len() == 1 {
            let old = self.root;
            self.root = root.children[0];
            self.free_nodes.push(old);
        }
    }

    /// Validates B+ tree structural invariants (tests / debug builds).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        fn walk(
            t: &BTreeTable,
            id: u32,
            depth: usize,
            leaf_depth: &mut Option<usize>,
            is_root: bool,
        ) {
            let n = &t.nodes[id as usize];
            assert!(n.keys.windows(2).all(|w| w[0] < w[1]), "keys sorted");
            if n.leaf {
                assert_eq!(n.keys.len(), n.vals.len());
                if !is_root {
                    assert!(n.keys.len() >= MIN_KEYS, "leaf underflow");
                }
                match leaf_depth {
                    None => *leaf_depth = Some(depth),
                    Some(d) => assert_eq!(*d, depth, "leaves at equal depth"),
                }
            } else {
                assert_eq!(n.children.len(), n.keys.len() + 1);
                if !is_root {
                    assert!(n.children.len() > MIN_KEYS, "internal underflow");
                } else {
                    assert!(n.children.len() >= 2, "root internal has ≥2 children");
                }
                assert!(n.keys.len() <= MAX_KEYS);
                for &c in &n.children {
                    walk(t, c, depth + 1, leaf_depth, false);
                }
            }
        }
        let mut leaf_depth = None;
        walk(self, self.root, 0, &mut leaf_depth, true);
    }

    fn vma_key(&self, sc: SizeClass, index: u32) -> u64 {
        self.codec
            .base_of(sc, index)
            .expect("index within codec capacity")
    }
}

impl VmaTable for BTreeTable {
    fn lookup(&mut self, va: Va, pd: PdId, acc: &mut Vec<TableAccess>) -> Option<VmaRecord> {
        if !self.codec.matches(va) {
            return None;
        }
        let slot = self.find_covering(va, acc)?;
        let vte_addr = self.arena_addr(slot);
        acc.push(TableAccess::VteRead(vte_addr));
        let vte = self.arena[slot as usize].as_ref()?;
        if !vte.attr.valid || va < vte.base || va - vte.base >= vte.len {
            return None;
        }
        Some(VmaRecord {
            vte: vte_addr,
            base: vte.base,
            len: vte.len,
            global: vte.attr.global,
            privileged: vte.attr.privileged,
            perm: vte.perm_for(pd),
        })
    }

    fn insert(
        &mut self,
        sc: SizeClass,
        index: u32,
        len: u64,
        phys: u64,
        acc: &mut Vec<TableAccess>,
    ) -> VteAddr {
        assert!(len <= sc.bytes(), "len exceeds size-class chunk");
        let base = self.vma_key(sc, index);
        assert!(
            !self.slot_of_vma.contains_key(&(sc.index(), index)),
            "double insert at {sc} index {index}"
        );
        let slot = self.alloc_arena(Vte::new(base, len, phys));
        self.slot_of_vma.insert((sc.index(), index), slot);
        self.insert_key(base, slot, acc);
        let vte_addr = self.arena_addr(slot);
        acc.push(TableAccess::VteWrite(vte_addr));
        self.live += 1;
        vte_addr
    }

    fn remove(&mut self, sc: SizeClass, index: u32, acc: &mut Vec<TableAccess>) -> bool {
        let Some(slot) = self.slot_of_vma.remove(&(sc.index(), index)) else {
            return false;
        };
        let base = self.vma_key(sc, index);
        self.delete_key(base, acc);
        let vte_addr = self.arena_addr(slot);
        acc.push(TableAccess::VteWrite(vte_addr));
        self.arena[slot as usize] = None;
        self.free_arena.push(slot);
        self.live -= 1;
        true
    }

    fn set_perm(
        &mut self,
        sc: SizeClass,
        index: u32,
        pd: PdId,
        perm: Perm,
        acc: &mut Vec<TableAccess>,
    ) -> bool {
        let base = self.vma_key(sc, index);
        let Some(slot) = self.find_covering(base, acc) else {
            return false;
        };
        let Some(vte) = self.arena[slot as usize].as_mut() else {
            return false;
        };
        if vte.base != base || !vte.attr.valid {
            return false;
        }
        vte.set_perm(pd, perm);
        acc.push(TableAccess::VteWrite(self.arena_addr(slot)));
        true
    }

    fn transfer_perm(
        &mut self,
        sc: SizeClass,
        index: u32,
        from: PdId,
        to: PdId,
        mask: Perm,
        mv: bool,
        acc: &mut Vec<TableAccess>,
    ) -> Option<Perm> {
        let base = self.vma_key(sc, index);
        let slot = self.find_covering(base, acc)?;
        let vte = self.arena[slot as usize].as_mut()?;
        if vte.base != base || !vte.attr.valid {
            return None;
        }
        let perm = vte.perm_for(from) & mask;
        if perm.is_none() {
            return None;
        }
        if mv {
            vte.revoke(from);
        }
        vte.set_perm(to, perm);
        acc.push(TableAccess::VteWrite(self.arena_addr(slot)));
        Some(perm)
    }

    fn set_len(&mut self, sc: SizeClass, index: u32, len: u64, acc: &mut Vec<TableAccess>) -> bool {
        if len == 0 || len > sc.bytes() {
            return false;
        }
        let base = self.vma_key(sc, index);
        let Some(slot) = self.find_covering(base, acc) else {
            return false;
        };
        let Some(vte) = self.arena[slot as usize].as_mut() else {
            return false;
        };
        if vte.base != base {
            return false;
        }
        vte.len = len;
        acc.push(TableAccess::VteWrite(self.arena_addr(slot)));
        true
    }

    fn set_attr(
        &mut self,
        sc: SizeClass,
        index: u32,
        attr: VteAttr,
        acc: &mut Vec<TableAccess>,
    ) -> bool {
        let base = self.vma_key(sc, index);
        let Some(slot) = self.find_covering(base, acc) else {
            return false;
        };
        let Some(vte) = self.arena[slot as usize].as_mut() else {
            return false;
        };
        if vte.base != base {
            return false;
        }
        vte.attr = VteAttr {
            valid: true,
            ..attr
        };
        acc.push(TableAccess::VteWrite(self.arena_addr(slot)));
        true
    }

    fn peek(&self, sc: SizeClass, index: u32) -> Option<&Vte> {
        let slot = self.slot_of_vma.get(&(sc.index(), index))?;
        self.arena[*slot as usize].as_ref().filter(|v| v.attr.valid)
    }

    fn vte_addr(&self, sc: SizeClass, index: u32) -> VteAddr {
        match self.slot_of_vma.get(&(sc.index(), index)) {
            Some(&slot) => self.arena_addr(slot),
            None => VteAddr(0),
        }
    }

    fn live_mappings(&self) -> usize {
        self.live
    }

    fn live_slots(&self) -> Vec<(SizeClass, u32)> {
        let mut out: Vec<(SizeClass, u32)> = self
            .slot_of_vma
            .keys()
            .map(|&(sc, index)| {
                (
                    SizeClass::from_index(sc).expect("stored class valid"),
                    index,
                )
            })
            .collect();
        // The side map iterates in hash order; sort so enumeration is
        // deterministic (snapshots feed seeded, reproducible recovery).
        out.sort_by_key(|&(sc, index)| (sc.index(), index));
        out
    }

    fn dead_slots(&self) -> usize {
        self.free_nodes.len() + self.free_arena.len()
    }

    fn compact(&mut self, acc: &mut Vec<TableAccess>) -> usize {
        let mut reclaimed = 0;
        // Only trailing freed entries can be released: interior node ids
        // are referenced by parents and interior arena slots must keep
        // their addresses (VLB/VTD tags survive rebalancing). Interior
        // holes stay on the free lists for reuse by the next insert.
        self.free_nodes.sort_unstable();
        while self
            .free_nodes
            .last()
            .is_some_and(|&id| id as usize == self.nodes.len() - 1)
        {
            let id = self.free_nodes.pop().expect("checked non-empty");
            acc.push(TableAccess::NodeWrite(self.node_addr(id)));
            self.nodes.pop();
            reclaimed += 1;
        }
        self.free_arena.sort_unstable();
        while self
            .free_arena
            .last()
            .is_some_and(|&slot| slot as usize == self.arena.len() - 1)
        {
            let slot = self.free_arena.pop().expect("checked non-empty");
            acc.push(TableAccess::VteWrite(self.arena_addr(slot)));
            self.arena.pop();
            reclaimed += 1;
        }
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> BTreeTable {
        BTreeTable::new(VaCodec::isca25(), 0x8000_0000, 0x9000_0000)
    }

    fn sc(k: u8) -> SizeClass {
        SizeClass::from_index(k).unwrap()
    }

    #[test]
    fn insert_and_lookup_resolves_perm() {
        let mut t = table();
        let mut acc = Vec::new();
        t.insert(sc(1), 3, 200, 0, &mut acc);
        t.set_perm(sc(1), 3, PdId(5), Perm::RW, &mut acc);
        let base = t.codec().base_of(sc(1), 3).unwrap();
        acc.clear();
        let rec = t.lookup(base + 50, PdId(5), &mut acc).unwrap();
        assert_eq!(rec.perm, Perm::RW);
        assert_eq!(rec.base, base);
        // Lookup must have walked at least one node plus the VTE.
        assert!(acc.iter().any(|a| matches!(a, TableAccess::NodeRead(_))));
        assert!(acc.iter().any(|a| matches!(a, TableAccess::VteRead(_))));
    }

    #[test]
    fn many_inserts_keep_invariants_and_depth_grows() {
        let mut t = table();
        let mut acc = Vec::new();
        for i in 0..500 {
            t.insert(sc(0), i, 128, 0, &mut acc);
            if i % 97 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        assert_eq!(t.live_mappings(), 500);
        // A lookup in a 500-entry tree must touch more nodes than one in a
        // 1-entry tree (tree height > 1).
        acc.clear();
        let base = t.codec().base_of(sc(0), 250).unwrap();
        let _ = t.lookup(base, PdId(0), &mut acc);
        let reads = acc
            .iter()
            .filter(|a| matches!(a, TableAccess::NodeRead(_)))
            .count();
        assert!(
            reads >= 3,
            "expected ≥3 node reads in a deep tree, got {reads}"
        );
    }

    #[test]
    fn delete_rebalances_and_keeps_invariants() {
        let mut t = table();
        let mut acc = Vec::new();
        for i in 0..300 {
            t.insert(sc(0), i, 128, 0, &mut acc);
        }
        // Remove in an order that forces merges and borrows.
        for i in (0..300).step_by(2) {
            assert!(t.remove(sc(0), i, &mut acc));
            if i % 50 == 0 {
                t.check_invariants();
            }
        }
        for i in (1..300).step_by(2) {
            assert!(t.remove(sc(0), i, &mut acc));
        }
        t.check_invariants();
        assert_eq!(t.live_mappings(), 0);
        // All gone: lookups fail.
        let base = t.codec().base_of(sc(0), 100).unwrap();
        assert!(t.lookup(base, PdId(0), &mut acc).is_none());
    }

    #[test]
    fn lookup_costs_more_accesses_than_plain_list() {
        use crate::table::PlainListTable;
        let mut bt = table();
        let mut pl = PlainListTable::new(VaCodec::isca25(), 0x4000_0000);
        let mut acc_bt = Vec::new();
        let mut acc_pl = Vec::new();
        for i in 0..200 {
            bt.insert(sc(0), i, 128, 0, &mut acc_bt);
            pl.insert(sc(0), i, 128, 0, &mut acc_pl);
        }
        acc_bt.clear();
        acc_pl.clear();
        let base = bt.codec().base_of(sc(0), 117).unwrap();
        bt.lookup(base, PdId(0), &mut acc_bt).unwrap();
        pl.lookup(base, PdId(0), &mut acc_pl).unwrap();
        assert_eq!(acc_pl.len(), 1, "plain list: exactly one VTE read");
        assert!(
            acc_bt.len() > acc_pl.len(),
            "B-tree walk ({}) must out-access the plain list (1)",
            acc_bt.len()
        );
    }

    #[test]
    fn vte_addresses_stable_across_rebalancing() {
        let mut t = table();
        let mut acc = Vec::new();
        t.insert(sc(0), 0, 128, 0, &mut acc);
        let tagged = t.vte_addr(sc(0), 0);
        for i in 1..100 {
            t.insert(sc(0), i, 128, 0, &mut acc);
        }
        for i in 50..100 {
            t.remove(sc(0), i, &mut acc);
        }
        assert_eq!(t.vte_addr(sc(0), 0), tagged, "VLB tags must not move");
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut t = table();
        let mut acc = Vec::new();
        assert!(!t.remove(sc(0), 7, &mut acc));
        assert!(!t.set_perm(sc(0), 7, PdId(1), Perm::READ, &mut acc));
        assert!(t
            .transfer_perm(sc(0), 7, PdId(1), PdId(2), Perm::RWX, true, &mut acc)
            .is_none());
    }

    #[test]
    fn arena_slots_recycled() {
        let mut t = table();
        let mut acc = Vec::new();
        t.insert(sc(0), 0, 128, 0, &mut acc);
        let first = t.vte_addr(sc(0), 0);
        t.remove(sc(0), 0, &mut acc);
        t.insert(sc(0), 1, 128, 0, &mut acc);
        assert_eq!(t.vte_addr(sc(0), 1), first, "freed arena slot reused");
    }

    #[test]
    fn foreign_va_lookup_is_free_and_fails() {
        let mut t = table();
        let mut acc = Vec::new();
        assert!(t.lookup(0x7fff_0000_0000, PdId(0), &mut acc).is_none());
        assert!(acc.is_empty());
    }
}
