//! VMA snapshots: pristine-layout capture, diff, and whole-table images.
//!
//! Two consumers, both in the crash-recovery subsystem:
//!
//! * **PD sanitization** (Groundhog-style): [`PdSnapshot`] records the
//!   pristine VMA/permission layout a function's protection domain has
//!   right after setup. At teardown the runtime *diffs* the live table
//!   against the snapshot and repairs only the divergence — unmapping
//!   stray VMAs, resetting drifted permissions — instead of destroying
//!   and rebuilding the PD from scratch for the next request.
//! * **Checkpoints**: [`TableSnapshot`] is a full copy of the table's live
//!   VTEs, taken at journal-checkpoint cadence. After a whole-worker crash
//!   the restored (pristine) image is validated against the checkpoint's
//!   durable footprint — the privileged/global runtime mappings that must
//!   survive any crash bit-for-bit.
//!
//! Capture and diff charge no simulated memory accesses themselves; the
//! caller (PrivLib) charges the repairs it actually performs.

use jord_hw::types::{PdId, Perm, Va};

use crate::size_class::SizeClass;
use crate::table::VmaTable;
use crate::vte::Vte;

/// One VMA as a snapshot sees it: location, geometry, and the captured
/// permission of the snapshotted PD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Size class of the VMA.
    pub sc: SizeClass,
    /// Index within the class.
    pub index: u32,
    /// Base virtual address.
    pub base: Va,
    /// Requested length in bytes.
    pub len: u64,
    /// The permission the snapshotted PD held at capture time.
    pub perm: Perm,
}

/// One divergence between a PD's pristine snapshot and the live table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotDiff {
    /// The PD holds a VMA the snapshot doesn't know about: unmap it.
    Extra {
        /// Size class of the stray VMA.
        sc: SizeClass,
        /// Index within the class.
        index: u32,
        /// Its base address (what `munmap` takes).
        va: Va,
    },
    /// A snapshotted VMA's permission drifted: reset it to `want`.
    PermDrift {
        /// Size class of the drifted VMA.
        sc: SizeClass,
        /// Index within the class.
        index: u32,
        /// Its base address.
        va: Va,
        /// The pristine permission to restore.
        want: Perm,
    },
    /// A snapshotted VMA disappeared entirely; the PD cannot be repaired
    /// in place and must be rebuilt from scratch.
    Missing {
        /// Size class of the lost VMA.
        sc: SizeClass,
        /// Index within the class.
        index: u32,
    },
}

/// The pristine VMA/permission layout of one protection domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdSnapshot {
    /// The snapshotted PD.
    pub pd: PdId,
    /// Every VMA the PD held a permission on, in deterministic
    /// class-then-index order.
    pub entries: Vec<SnapshotEntry>,
}

impl PdSnapshot {
    /// Captures `pd`'s current view of `table`: every live VMA it holds a
    /// permission on (global grants excluded — they belong to the runtime
    /// image, not the PD).
    pub fn capture(table: &dyn VmaTable, pd: PdId) -> Self {
        let mut entries = Vec::new();
        for (sc, index) in table.live_slots() {
            let vte = table.peek(sc, index).expect("live slot has a VTE");
            if vte.attr.global {
                continue;
            }
            let perm = vte.perm_for(pd);
            if !perm.is_none() {
                entries.push(SnapshotEntry {
                    sc,
                    index,
                    base: vte.base,
                    len: vte.len,
                    perm,
                });
            }
        }
        PdSnapshot { pd, entries }
    }

    /// Number of captured VMAs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the PD held nothing at capture time.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Diffs the snapshot against the table's current state, returning the
    /// repairs (in deterministic order) that return the PD to its pristine
    /// layout. An empty result means the PD is already sanitized.
    pub fn diff(&self, table: &dyn VmaTable) -> Vec<SnapshotDiff> {
        let mut repairs = Vec::new();
        // Pass 1: strays — VMAs the PD holds now but didn't at capture.
        for (sc, index) in table.live_slots() {
            let vte = table.peek(sc, index).expect("live slot has a VTE");
            if vte.attr.global || vte.perm_for(self.pd).is_none() {
                continue;
            }
            if !self.entries.iter().any(|e| e.sc == sc && e.index == index) {
                repairs.push(SnapshotDiff::Extra {
                    sc,
                    index,
                    va: vte.base,
                });
            }
        }
        // Pass 2: drifted or lost snapshot entries.
        for e in &self.entries {
            match table.peek(e.sc, e.index) {
                None => repairs.push(SnapshotDiff::Missing {
                    sc: e.sc,
                    index: e.index,
                }),
                Some(vte) => {
                    if vte.base != e.base {
                        // Slot was recycled for a different VMA: the
                        // snapshotted one is gone.
                        repairs.push(SnapshotDiff::Missing {
                            sc: e.sc,
                            index: e.index,
                        });
                    } else if vte.perm_for(self.pd) != e.perm {
                        repairs.push(SnapshotDiff::PermDrift {
                            sc: e.sc,
                            index: e.index,
                            va: e.base,
                            want: e.perm,
                        });
                    }
                }
            }
        }
        repairs
    }
}

/// A full copy of a VMA table's live entries, in deterministic order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSnapshot {
    /// `(class, index, VTE)` for every live mapping.
    pub entries: Vec<(SizeClass, u32, Vte)>,
}

impl TableSnapshot {
    /// Copies every live VTE out of `table`.
    pub fn capture(table: &dyn VmaTable) -> Self {
        let entries = table
            .live_slots()
            .into_iter()
            .map(|(sc, index)| {
                let vte = table.peek(sc, index).expect("live slot has a VTE");
                (sc, index, vte.clone())
            })
            .collect();
        TableSnapshot { entries }
    }

    /// Number of captured mappings.
    pub fn live(&self) -> usize {
        self.entries.len()
    }

    /// The durable subset: privileged or global mappings — the runtime
    /// image (PrivLib's own structures, shared function code) that any
    /// correct crash restore must reproduce exactly. Returned as
    /// `(class, index, base, len)` in capture order.
    pub fn durable_footprint(&self) -> Vec<(SizeClass, u32, Va, u64)> {
        self.entries
            .iter()
            .filter(|(_, _, vte)| vte.attr.privileged || vte.attr.global)
            .map(|&(sc, index, ref vte)| (sc, index, vte.base, vte.len))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::VaCodec;
    use crate::table::PlainListTable;

    fn sc(k: u8) -> SizeClass {
        SizeClass::from_index(k).unwrap()
    }

    fn table_with(pd: PdId, vmas: &[(u8, u32, Perm)]) -> PlainListTable {
        let mut t = PlainListTable::new(VaCodec::isca25(), 0x4000_0000);
        let mut acc = Vec::new();
        for &(k, index, perm) in vmas {
            t.insert(sc(k), index, 128, 0, &mut acc);
            t.set_perm(sc(k), index, pd, perm, &mut acc);
        }
        t
    }

    #[test]
    fn capture_sees_only_the_pds_vmas() {
        let pd = PdId(3);
        let mut t = table_with(pd, &[(0, 1, Perm::RW), (1, 5, Perm::RX)]);
        let mut acc = Vec::new();
        // A VMA belonging to someone else.
        t.insert(sc(0), 9, 128, 0, &mut acc);
        t.set_perm(sc(0), 9, PdId(7), Perm::RW, &mut acc);
        let snap = PdSnapshot::capture(&t, pd);
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
        assert!(snap.entries.iter().all(|e| e.perm != Perm::NONE));
    }

    #[test]
    fn capture_skips_global_mappings() {
        let pd = PdId(3);
        let mut t = table_with(pd, &[(0, 1, Perm::RW)]);
        let mut acc = Vec::new();
        t.insert(sc(2), 0, 128, 0, &mut acc);
        t.set_attr(
            sc(2),
            0,
            crate::vte::VteAttr {
                valid: true,
                global: true,
                privileged: false,
                global_perm: Perm::RX,
            },
            &mut acc,
        );
        let snap = PdSnapshot::capture(&t, pd);
        assert_eq!(snap.len(), 1, "global grant is runtime image, not PD state");
    }

    #[test]
    fn pristine_table_diffs_empty() {
        let pd = PdId(4);
        let t = table_with(pd, &[(0, 0, Perm::RW), (3, 2, Perm::READ)]);
        let snap = PdSnapshot::capture(&t, pd);
        assert!(snap.diff(&t).is_empty());
    }

    #[test]
    fn diff_flags_extras_drift_and_missing() {
        let pd = PdId(4);
        let mut t = table_with(pd, &[(0, 0, Perm::RW), (1, 1, Perm::RX)]);
        let snap = PdSnapshot::capture(&t, pd);
        let mut acc = Vec::new();
        // Extra: a scratch VMA mapped after capture.
        t.insert(sc(2), 7, 128, 0, &mut acc);
        t.set_perm(sc(2), 7, pd, Perm::RW, &mut acc);
        // Drift: permission changed.
        t.set_perm(sc(0), 0, pd, Perm::READ, &mut acc);
        // Missing: a snapshotted VMA removed.
        t.remove(sc(1), 1, &mut acc);
        let repairs = snap.diff(&t);
        assert_eq!(repairs.len(), 3, "{repairs:?}");
        assert!(repairs
            .iter()
            .any(|r| matches!(r, SnapshotDiff::Extra { sc: c, index: 7, .. } if *c == sc(2))));
        assert!(repairs
            .iter()
            .any(|r| matches!(r, SnapshotDiff::PermDrift { want, .. } if *want == Perm::RW)));
        assert!(repairs
            .iter()
            .any(|r| matches!(r, SnapshotDiff::Missing { index: 1, .. })));
    }

    #[test]
    fn recycled_slot_counts_as_missing() {
        let pd = PdId(4);
        let mut t = table_with(pd, &[(0, 0, Perm::RW)]);
        let snap = PdSnapshot::capture(&t, pd);
        let mut acc = Vec::new();
        t.remove(sc(0), 0, &mut acc);
        t.insert(sc(0), 0, 64, 0, &mut acc); // same slot, new (shorter) VMA
        t.set_perm(sc(0), 0, pd, Perm::RW, &mut acc);
        let repairs = snap.diff(&t);
        // Same base here (slot 0 base is fixed by the codec), so the VMA is
        // judged by identity of base: base matches, perm matches — only a
        // a length change distinguishes it, which sanitization tolerates
        // (the chunk is reserved either way). Behaviour is: no Missing.
        assert!(repairs
            .iter()
            .all(|r| !matches!(r, SnapshotDiff::Extra { .. })));
    }

    #[test]
    fn table_snapshot_copies_everything_and_finds_durables() {
        let pd = PdId(2);
        let mut t = table_with(pd, &[(0, 0, Perm::RW), (1, 3, Perm::RX)]);
        let mut acc = Vec::new();
        t.insert(sc(4), 0, 1024, 0, &mut acc);
        t.set_attr(
            sc(4),
            0,
            crate::vte::VteAttr {
                valid: true,
                global: false,
                privileged: true,
                global_perm: Perm::NONE,
            },
            &mut acc,
        );
        let snap = TableSnapshot::capture(&t);
        assert_eq!(snap.live(), 3);
        assert_eq!(snap.live(), t.live_mappings());
        let durable = snap.durable_footprint();
        assert_eq!(durable.len(), 1);
        assert_eq!(durable[0].0, sc(4));
        // Two pristine captures are identical (determinism).
        assert_eq!(snap, TableSnapshot::capture(&t));
    }
}
