//! Segregated free lists of VMA slots (§4.4).
//!
//! "PrivLib manages all protected resources using free lists. During
//! initialization it … prepares VMA free lists with free memory chunks
//! partitioned from the reserved memory according to the size class
//! configuration. Resource allocation and deallocation … are implemented
//! through atomic pop and push operations on these free lists."
//!
//! Each entry is a VMA *index* within its size class; the index determines
//! both the VA (via the codec) and the VTE slot, so a pop hands back a
//! complete allocation in O(1).

use crate::codec::VaCodec;
use crate::size_class::{SizeClass, NUM_CLASSES};

/// Per-size-class free lists of VMA indices.
#[derive(Debug, Clone)]
pub struct FreeLists {
    lists: Vec<Vec<u32>>,
    /// Head cache-line addresses, one per class, so callers can charge the
    /// atomic pop/push at a realistic location.
    head_addrs: Vec<u64>,
}

impl FreeLists {
    /// Builds fully populated free lists for every class under `codec`,
    /// with list heads laid out from `head_base` (one cache line each).
    ///
    /// Indices are handed out in ascending order (lowest index first), which
    /// keeps the hot set of VTEs dense — the same locality a real allocator
    /// gets from LIFO reuse.
    pub fn new(codec: &VaCodec, head_base: u64) -> Self {
        let lists = SizeClass::all()
            .map(|sc| {
                let cap = codec.capacity(sc);
                // Reverse so pop() yields index 0 first.
                (0..cap).rev().collect()
            })
            .collect();
        FreeLists {
            lists,
            head_addrs: (0..NUM_CLASSES as u64)
                .map(|i| head_base + i * 64)
                .collect(),
        }
    }

    /// The cache-line address of the class's list head (for charging the
    /// atomic operation).
    pub fn head_addr(&self, sc: SizeClass) -> u64 {
        self.head_addrs[sc.index() as usize]
    }

    /// Pops a free VMA index of class `sc`, or `None` when exhausted.
    pub fn pop(&mut self, sc: SizeClass) -> Option<u32> {
        self.lists[sc.index() as usize].pop()
    }

    /// Returns a VMA index to its class's free list.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on double free.
    pub fn push(&mut self, sc: SizeClass, index: u32) {
        debug_assert!(
            !self.lists[sc.index() as usize].contains(&index),
            "double free of {sc} index {index}"
        );
        self.lists[sc.index() as usize].push(index);
    }

    /// Number of free indices in class `sc`.
    pub fn available(&self, sc: SizeClass) -> usize {
        self.lists[sc.index() as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lists() -> FreeLists {
        FreeLists::new(&VaCodec::isca25(), 0x7000_0000)
    }

    #[test]
    fn pop_hands_out_dense_indices() {
        let mut f = lists();
        let sc = SizeClass::MIN;
        assert_eq!(f.pop(sc), Some(0));
        assert_eq!(f.pop(sc), Some(1));
        assert_eq!(f.pop(sc), Some(2));
    }

    #[test]
    fn push_recycles_lifo() {
        let mut f = lists();
        let sc = SizeClass::MIN;
        let a = f.pop(sc).unwrap();
        let b = f.pop(sc).unwrap();
        f.push(sc, a);
        assert_eq!(f.pop(sc), Some(a), "LIFO reuse");
        f.push(sc, b);
        f.push(sc, a);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut f = lists();
        let sc = SizeClass::MAX; // capped at 64 indices
        for _ in 0..64 {
            assert!(f.pop(sc).is_some());
        }
        assert_eq!(f.pop(sc), None);
        assert_eq!(f.available(sc), 0);
    }

    #[test]
    fn classes_are_independent() {
        let mut f = lists();
        let a = SizeClass::MIN;
        let b = SizeClass::from_index(5).unwrap();
        let before = f.available(b);
        f.pop(a);
        assert_eq!(f.available(b), before);
    }

    #[test]
    fn head_addrs_are_distinct_lines() {
        let f = lists();
        let mut addrs: Vec<u64> = SizeClass::all().map(|sc| f.head_addr(sc)).collect();
        addrs.dedup();
        assert_eq!(addrs.len(), 26);
        assert!(addrs.windows(2).all(|w| w[1] - w[0] >= 64));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_panics_in_debug() {
        let mut f = lists();
        let sc = SizeClass::MIN;
        let i = f.pop(sc).unwrap();
        f.push(sc, i);
        f.push(sc, i);
    }
}
