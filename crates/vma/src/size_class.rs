//! The 26 VMA size classes (§4.1).
//!
//! "We choose the size classes as all the power-of-two values between 128
//! bytes and 4 GB, as 99 % of the VMAs in our target workloads are smaller
//! than 1 KB." Class *k* holds VMAs of up to `128 << k` bytes; each
//! allocated VMA is backed by a contiguous chunk of at least its class size.

use core::fmt;

/// Smallest class size in bytes.
pub const MIN_CLASS_BYTES: u64 = 128;
/// Number of size classes: 128 B × 2²⁵ = 4 GiB.
pub const NUM_CLASSES: u8 = 26;

/// One of the 26 power-of-two size classes.
///
/// # Example
///
/// ```
/// use jord_vma::SizeClass;
///
/// let sc = SizeClass::for_len(300).unwrap();
/// assert_eq!(sc.bytes(), 512);
/// assert_eq!(SizeClass::for_len(1).unwrap().bytes(), 128);
/// assert!(SizeClass::for_len(5 << 30).is_none()); // > 4 GiB
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SizeClass(u8);

impl SizeClass {
    /// The smallest class (128 B).
    pub const MIN: SizeClass = SizeClass(0);
    /// The largest class (4 GiB).
    pub const MAX: SizeClass = SizeClass(NUM_CLASSES - 1);

    /// Constructs from a raw class index.
    ///
    /// Returns `None` if `index >= 26`.
    pub const fn from_index(index: u8) -> Option<SizeClass> {
        if index < NUM_CLASSES {
            Some(SizeClass(index))
        } else {
            None
        }
    }

    /// The smallest class whose chunk size covers `len` bytes.
    ///
    /// Returns `None` for `len == 0` or `len > 4 GiB`.
    pub const fn for_len(len: u64) -> Option<SizeClass> {
        if len == 0 || len > MIN_CLASS_BYTES << (NUM_CLASSES - 1) {
            return None;
        }
        if len <= MIN_CLASS_BYTES {
            return Some(SizeClass(0));
        }
        // ceil(log2(len / 128))
        let k = 64 - (len - 1).leading_zeros() as u8 - 7;
        Some(SizeClass(k))
    }

    /// The raw class index (0 … 25).
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Chunk size of this class in bytes.
    pub const fn bytes(self) -> u64 {
        MIN_CLASS_BYTES << self.0
    }

    /// log2 of the chunk size; the number of offset bits the class needs in
    /// the VA encoding of Figure 6.
    pub const fn offset_bits(self) -> u32 {
        7 + self.0 as u32
    }

    /// Iterates over all classes, smallest first.
    pub fn all() -> impl Iterator<Item = SizeClass> {
        (0..NUM_CLASSES).map(SizeClass)
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.bytes();
        if b < 1024 {
            write!(f, "sc{}({}B)", self.0, b)
        } else if b < 1024 * 1024 {
            write!(f, "sc{}({}KiB)", self.0, b / 1024)
        } else if b < 1024 * 1024 * 1024 {
            write!(f, "sc{}({}MiB)", self.0, b / (1024 * 1024))
        } else {
            write!(f, "sc{}({}GiB)", self.0, b / (1024 * 1024 * 1024))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_sizes_span_128b_to_4gib() {
        assert_eq!(SizeClass::MIN.bytes(), 128);
        assert_eq!(SizeClass::MAX.bytes(), 4 << 30);
        assert_eq!(SizeClass::all().count(), 26);
    }

    #[test]
    fn for_len_picks_smallest_covering_class() {
        assert_eq!(SizeClass::for_len(1).unwrap().bytes(), 128);
        assert_eq!(SizeClass::for_len(128).unwrap().bytes(), 128);
        assert_eq!(SizeClass::for_len(129).unwrap().bytes(), 256);
        assert_eq!(SizeClass::for_len(4096).unwrap().bytes(), 4096);
        assert_eq!(SizeClass::for_len(4097).unwrap().bytes(), 8192);
        assert_eq!(SizeClass::for_len(4 << 30).unwrap(), SizeClass::MAX);
    }

    #[test]
    fn for_len_rejects_zero_and_oversize() {
        assert!(SizeClass::for_len(0).is_none());
        assert!(SizeClass::for_len((4u64 << 30) + 1).is_none());
    }

    #[test]
    fn covering_invariant_holds_for_all_lengths() {
        for len in (1..=(1u64 << 20)).step_by(4093) {
            let sc = SizeClass::for_len(len).unwrap();
            assert!(sc.bytes() >= len);
            if sc.index() > 0 {
                let smaller = SizeClass::from_index(sc.index() - 1).unwrap();
                assert!(smaller.bytes() < len, "class not minimal for {len}");
            }
        }
    }

    #[test]
    fn offset_bits_match_size() {
        for sc in SizeClass::all() {
            assert_eq!(1u64 << sc.offset_bits(), sc.bytes());
        }
    }

    #[test]
    fn from_index_bounds() {
        assert!(SizeClass::from_index(25).is_some());
        assert!(SizeClass::from_index(26).is_none());
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SizeClass::MIN.to_string(), "sc0(128B)");
        assert_eq!(SizeClass::for_len(2048).unwrap().to_string(), "sc4(2KiB)");
        assert_eq!(SizeClass::MAX.to_string(), "sc25(4GiB)");
    }
}
