//! The VMA table abstraction and the plain-list implementation (§4.1).
//!
//! Both software (PrivLib) and hardware (the VTW) operate on the same table
//! concurrently, so every operation reports the memory accesses it made as
//! [`TableAccess`] records; the caller replays them against the `jord-hw`
//! machine to charge coherence-accurate latencies. VTE accesses carry the
//! T bit (they interact with the VTD); B-tree index-node accesses are plain
//! data traffic.

use jord_hw::types::{PdId, Perm, Va, VteAddr};

use crate::codec::{VaCodec, VTE_BYTES};
use crate::size_class::SizeClass;
use crate::vte::{Vte, VteAttr};

/// One memory access performed by a table operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableAccess {
    /// A VTE read (T-bit coherence message; registers at the VTD).
    VteRead(VteAddr),
    /// A VTE write (T-bit; triggers a VLB shootdown of stale sharers).
    VteWrite(VteAddr),
    /// A B-tree index-node read (ordinary data traffic).
    NodeRead(u64),
    /// A B-tree index-node write (ordinary data traffic).
    NodeWrite(u64),
}

/// A resolved VMA, as the VTW hands it to a VLB: range, attribute bits, and
/// the permission for the queried PD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmaRecord {
    /// Address of the backing VTE (the VLB/VTD tag).
    pub vte: VteAddr,
    /// VMA base address.
    pub base: Va,
    /// VMA length in bytes.
    pub len: u64,
    /// Global (G) bit.
    pub global: bool,
    /// Privilege (P) bit.
    pub privileged: bool,
    /// Permission resolved for the querying PD.
    pub perm: Perm,
}

/// Operations every VMA table implementation provides.
///
/// The plain list ([`PlainListTable`]) and the ablation B-tree
/// ([`crate::BTreeTable`]) implement the same contract, which is what lets
/// PrivLib and the runtime switch between Jord and Jord_BT (Figure 13).
pub trait VmaTable {
    /// Finds the VMA covering `va` and resolves its permission for `pd`.
    /// Returns `None` (after charging the accesses actually performed) if
    /// no valid mapping covers `va`.
    fn lookup(&mut self, va: Va, pd: PdId, acc: &mut Vec<TableAccess>) -> Option<VmaRecord>;

    /// Installs a fresh VTE for VMA `(sc, index)` with the requested `len`
    /// and physical backing, initially unshared. Returns its VTE address.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied (allocator invariant).
    fn insert(
        &mut self,
        sc: SizeClass,
        index: u32,
        len: u64,
        phys: u64,
        acc: &mut Vec<TableAccess>,
    ) -> VteAddr;

    /// Invalidates the VTE of `(sc, index)`. Returns `false` if it was not
    /// a live mapping.
    fn remove(&mut self, sc: SizeClass, index: u32, acc: &mut Vec<TableAccess>) -> bool;

    /// Sets `pd`'s permission on `(sc, index)`; `Perm::NONE` revokes.
    /// Returns `false` if the mapping does not exist.
    fn set_perm(
        &mut self,
        sc: SizeClass,
        index: u32,
        pd: PdId,
        perm: Perm,
        acc: &mut Vec<TableAccess>,
    ) -> bool;

    /// Atomically moves (`mv = true`, `pmove`) or copies (`pcopy`) the
    /// permission on `(sc, index)` from `from` to `to` — a single VTE
    /// write either way, as in Table 1. The granted permission is the
    /// holder's permission narrowed by `mask` (the `prot` argument of
    /// `pmove`/`pcopy`). Returns the granted permission, or `None` if the
    /// mapping doesn't exist, `from` holds nothing, or the mask strips
    /// every bit (in which case nothing changes).
    #[allow(clippy::too_many_arguments)] // mirrors pmove/pcopy's operands
    fn transfer_perm(
        &mut self,
        sc: SizeClass,
        index: u32,
        from: PdId,
        to: PdId,
        mask: Perm,
        mv: bool,
        acc: &mut Vec<TableAccess>,
    ) -> Option<Perm>;

    /// Updates the requested length (resize within the size-class chunk).
    /// Returns `false` if the mapping doesn't exist or `len` exceeds the
    /// chunk.
    fn set_len(&mut self, sc: SizeClass, index: u32, len: u64, acc: &mut Vec<TableAccess>) -> bool;

    /// Sets the attribute bits (G/P, global permission).
    fn set_attr(
        &mut self,
        sc: SizeClass,
        index: u32,
        attr: VteAttr,
        acc: &mut Vec<TableAccess>,
    ) -> bool;

    /// Introspection without charged accesses (assertions, tests, debug).
    fn peek(&self, sc: SizeClass, index: u32) -> Option<&Vte>;

    /// The VTE address of slot `(sc, index)`.
    fn vte_addr(&self, sc: SizeClass, index: u32) -> VteAddr;

    /// Number of live mappings.
    fn live_mappings(&self) -> usize;

    /// Every live mapping as `(class, index)` pairs in deterministic
    /// class-then-index order. Like [`peek`](Self::peek) this charges no
    /// accesses: snapshot capture, crash-recovery validation, and PD
    /// sanitization use it to enumerate state, then charge the repairs
    /// they actually perform.
    fn live_slots(&self) -> Vec<(SizeClass, u32)>;

    /// Dead bookkeeping entries a compaction pass would reclaim —
    /// tombstoned VTEs in the plain list, freed index nodes and arena
    /// slots in the B-tree. Introspection only, no charged accesses.
    fn dead_slots(&self) -> usize;

    /// Sweeps dead bookkeeping out of the table — clearing tombstoned
    /// VTEs (plain list) or releasing freed index nodes and arena slots
    /// (B-tree) — and returns the number of entries reclaimed. Each
    /// reclaimed entry is one charged write: the sweep rewrites the slot
    /// it scrubs. Live mappings and their VTE addresses are untouched,
    /// so compaction is always safe under concurrent VLB caching.
    fn compact(&mut self, acc: &mut Vec<TableAccess>) -> usize;
}

/// The plain-list VMA table: a flat, preallocated, overprovisioned array of
/// VTEs whose position is the closed form `A_Base + f(SC, Index)` — both
/// software and hardware use the same list concurrently (§4.1).
#[derive(Debug)]
pub struct PlainListTable {
    codec: VaCodec,
    base: u64,
    slots: Vec<Option<Vte>>,
    live: usize,
}

impl PlainListTable {
    /// Creates an empty table at memory address `base` (as programmed into
    /// `uatp`), with geometry from `codec` (as programmed into `uatc`).
    pub fn new(codec: VaCodec, base: u64) -> Self {
        PlainListTable {
            codec,
            base,
            slots: (0..codec.total_slots()).map(|_| None).collect(),
            live: 0,
        }
    }

    /// The codec this table was laid out with.
    pub fn codec(&self) -> &VaCodec {
        &self.codec
    }

    /// The table's base memory address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Table footprint in bytes (the "64 MB for a million VMAs" trade-off).
    pub fn footprint_bytes(&self) -> u64 {
        self.slots.len() as u64 * VTE_BYTES
    }

    fn slot_mut(&mut self, sc: SizeClass, index: u32) -> &mut Option<Vte> {
        let slot = self.codec.slot_of(sc, index);
        &mut self.slots[slot]
    }
}

impl VmaTable for PlainListTable {
    fn lookup(&mut self, va: Va, pd: PdId, acc: &mut Vec<TableAccess>) -> Option<VmaRecord> {
        // The VTW decodes the VA (pure logic, no memory) …
        let (sc, index, _off) = self.codec.decode(va)?;
        let vte_addr = self.codec.vte_addr(self.base, sc, index);
        // … and fetches exactly one VTE.
        acc.push(TableAccess::VteRead(vte_addr));
        let slot = self.codec.slot_of(sc, index);
        let vte = self.slots[slot].as_ref()?;
        if !vte.attr.valid {
            return None;
        }
        let off = va - vte.base;
        if off >= vte.len {
            return None; // beyond the requested bound within the chunk
        }
        Some(VmaRecord {
            vte: vte_addr,
            base: vte.base,
            len: vte.len,
            global: vte.attr.global,
            privileged: vte.attr.privileged,
            perm: vte.perm_for(pd),
        })
    }

    fn insert(
        &mut self,
        sc: SizeClass,
        index: u32,
        len: u64,
        phys: u64,
        acc: &mut Vec<TableAccess>,
    ) -> VteAddr {
        assert!(len <= sc.bytes(), "len exceeds size-class chunk");
        let base = self
            .codec
            .base_of(sc, index)
            .expect("index within codec capacity");
        let vte_addr = self.codec.vte_addr(self.base, sc, index);
        let slot = self.slot_mut(sc, index);
        assert!(
            slot.as_ref().is_none_or(|v| !v.attr.valid),
            "double insert at {sc} index {index}"
        );
        *slot = Some(Vte::new(base, len, phys));
        self.live += 1;
        acc.push(TableAccess::VteWrite(vte_addr));
        vte_addr
    }

    fn remove(&mut self, sc: SizeClass, index: u32, acc: &mut Vec<TableAccess>) -> bool {
        let vte_addr = self.codec.vte_addr(self.base, sc, index);
        let slot = self.slot_mut(sc, index);
        match slot {
            Some(vte) if vte.attr.valid => {
                vte.attr.valid = false;
                vte.clear_sharers();
                self.live -= 1;
                acc.push(TableAccess::VteWrite(vte_addr));
                true
            }
            _ => false,
        }
    }

    fn set_perm(
        &mut self,
        sc: SizeClass,
        index: u32,
        pd: PdId,
        perm: Perm,
        acc: &mut Vec<TableAccess>,
    ) -> bool {
        let vte_addr = self.codec.vte_addr(self.base, sc, index);
        match self.slot_mut(sc, index) {
            Some(vte) if vte.attr.valid => {
                vte.set_perm(pd, perm);
                acc.push(TableAccess::VteWrite(vte_addr));
                true
            }
            _ => false,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn transfer_perm(
        &mut self,
        sc: SizeClass,
        index: u32,
        from: PdId,
        to: PdId,
        mask: Perm,
        mv: bool,
        acc: &mut Vec<TableAccess>,
    ) -> Option<Perm> {
        let vte_addr = self.codec.vte_addr(self.base, sc, index);
        let vte = match self.slot_mut(sc, index) {
            Some(vte) if vte.attr.valid => vte,
            _ => return None,
        };
        let perm = vte.perm_for(from) & mask;
        if perm.is_none() {
            return None;
        }
        if mv {
            vte.revoke(from);
        }
        vte.set_perm(to, perm);
        acc.push(TableAccess::VteWrite(vte_addr));
        Some(perm)
    }

    fn set_len(&mut self, sc: SizeClass, index: u32, len: u64, acc: &mut Vec<TableAccess>) -> bool {
        if len == 0 || len > sc.bytes() {
            return false;
        }
        let vte_addr = self.codec.vte_addr(self.base, sc, index);
        match self.slot_mut(sc, index) {
            Some(vte) if vte.attr.valid => {
                vte.len = len;
                acc.push(TableAccess::VteWrite(vte_addr));
                true
            }
            _ => false,
        }
    }

    fn set_attr(
        &mut self,
        sc: SizeClass,
        index: u32,
        attr: VteAttr,
        acc: &mut Vec<TableAccess>,
    ) -> bool {
        let vte_addr = self.codec.vte_addr(self.base, sc, index);
        match self.slot_mut(sc, index) {
            Some(vte) if vte.attr.valid => {
                vte.attr = VteAttr {
                    valid: true,
                    ..attr
                };
                acc.push(TableAccess::VteWrite(vte_addr));
                true
            }
            _ => false,
        }
    }

    fn peek(&self, sc: SizeClass, index: u32) -> Option<&Vte> {
        let slot = self.codec.slot_of(sc, index);
        self.slots[slot].as_ref().filter(|v| v.attr.valid)
    }

    fn vte_addr(&self, sc: SizeClass, index: u32) -> VteAddr {
        self.codec.vte_addr(self.base, sc, index)
    }

    fn live_mappings(&self) -> usize {
        self.live
    }

    fn live_slots(&self) -> Vec<(SizeClass, u32)> {
        let mut out: Vec<(SizeClass, u32)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, v)| v.as_ref().is_some_and(|v| v.attr.valid))
            .map(|(slot, _)| self.codec.slot_to_vma(slot))
            .collect();
        out.sort_by_key(|&(sc, index)| (sc.index(), index));
        out
    }

    fn dead_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|v| v.as_ref().is_some_and(|v| !v.attr.valid))
            .count()
    }

    fn compact(&mut self, acc: &mut Vec<TableAccess>) -> usize {
        let mut reclaimed = 0;
        for slot in 0..self.slots.len() {
            if self.slots[slot].as_ref().is_some_and(|v| !v.attr.valid) {
                let (sc, index) = self.codec.slot_to_vma(slot);
                self.slots[slot] = None;
                acc.push(TableAccess::VteWrite(
                    self.codec.vte_addr(self.base, sc, index),
                ));
                reclaimed += 1;
            }
        }
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PlainListTable {
        PlainListTable::new(VaCodec::isca25(), 0x4000_0000)
    }

    fn sc(k: u8) -> SizeClass {
        SizeClass::from_index(k).unwrap()
    }

    #[test]
    fn insert_lookup_costs_one_vte_access_each() {
        let mut t = table();
        let mut acc = Vec::new();
        let vte = t.insert(sc(1), 3, 200, 0x9000, &mut acc);
        assert_eq!(acc, vec![TableAccess::VteWrite(vte)]);

        acc.clear();
        t.set_perm(sc(1), 3, PdId(5), Perm::RW, &mut acc);
        acc.clear();
        let base = t.codec().base_of(sc(1), 3).unwrap();
        let rec = t.lookup(base + 100, PdId(5), &mut acc).unwrap();
        assert_eq!(acc, vec![TableAccess::VteRead(vte)]);
        assert_eq!(rec.perm, Perm::RW);
        assert_eq!(rec.base, base);
        assert_eq!(rec.len, 200);
    }

    #[test]
    fn lookup_beyond_requested_len_fails() {
        let mut t = table();
        let mut acc = Vec::new();
        t.insert(sc(1), 0, 200, 0, &mut acc); // chunk is 256B, len 200
        let base = t.codec().base_of(sc(1), 0).unwrap();
        assert!(t.lookup(base + 199, PdId(0), &mut acc).is_some());
        assert!(t.lookup(base + 200, PdId(0), &mut acc).is_none());
    }

    #[test]
    fn lookup_of_unmapped_or_foreign_va_fails() {
        let mut t = table();
        let mut acc = Vec::new();
        // Valid encoding, empty slot.
        let va = t.codec().base_of(sc(0), 7).unwrap();
        assert!(t.lookup(va, PdId(0), &mut acc).is_none());
        // Foreign (non-Jord) VA: no access charged at all.
        acc.clear();
        assert!(t.lookup(0x7fff_dead_beef, PdId(0), &mut acc).is_none());
        assert!(acc.is_empty());
    }

    #[test]
    fn remove_invalidates_and_allows_reuse() {
        let mut t = table();
        let mut acc = Vec::new();
        t.insert(sc(2), 9, 512, 0, &mut acc);
        assert_eq!(t.live_mappings(), 1);
        assert!(t.remove(sc(2), 9, &mut acc));
        assert_eq!(t.live_mappings(), 0);
        assert!(!t.remove(sc(2), 9, &mut acc), "double free detected");
        // Slot is reusable.
        t.insert(sc(2), 9, 300, 0, &mut acc);
        assert_eq!(t.peek(sc(2), 9).unwrap().len, 300);
    }

    #[test]
    fn pmove_transfers_and_revokes_source() {
        let mut t = table();
        let mut acc = Vec::new();
        t.insert(sc(0), 0, 128, 0, &mut acc);
        t.set_perm(sc(0), 0, PdId(1), Perm::RW, &mut acc);
        acc.clear();
        let moved = t.transfer_perm(sc(0), 0, PdId(1), PdId(2), Perm::RWX, true, &mut acc);
        assert_eq!(moved, Some(Perm::RW));
        assert_eq!(acc.len(), 1, "pmove is one atomic VTE write");
        let vte = t.peek(sc(0), 0).unwrap();
        assert_eq!(vte.perm_for(PdId(1)), Perm::NONE);
        assert_eq!(vte.perm_for(PdId(2)), Perm::RW);
    }

    #[test]
    fn pcopy_keeps_source() {
        let mut t = table();
        let mut acc = Vec::new();
        t.insert(sc(0), 1, 128, 0, &mut acc);
        t.set_perm(sc(0), 1, PdId(1), Perm::READ, &mut acc);
        let copied = t.transfer_perm(sc(0), 1, PdId(1), PdId(2), Perm::RWX, false, &mut acc);
        assert_eq!(copied, Some(Perm::READ));
        let vte = t.peek(sc(0), 1).unwrap();
        assert_eq!(vte.perm_for(PdId(1)), Perm::READ);
        assert_eq!(vte.perm_for(PdId(2)), Perm::READ);
    }

    #[test]
    fn transfer_from_nonholder_fails() {
        let mut t = table();
        let mut acc = Vec::new();
        t.insert(sc(0), 2, 128, 0, &mut acc);
        assert_eq!(
            t.transfer_perm(sc(0), 2, PdId(9), PdId(2), Perm::RWX, true, &mut acc),
            None
        );
    }

    #[test]
    fn resize_within_chunk_only() {
        let mut t = table();
        let mut acc = Vec::new();
        t.insert(sc(1), 5, 100, 0, &mut acc); // 256B chunk
        assert!(t.set_len(sc(1), 5, 256, &mut acc));
        assert!(!t.set_len(sc(1), 5, 257, &mut acc));
        assert!(!t.set_len(sc(1), 5, 0, &mut acc));
        assert_eq!(t.peek(sc(1), 5).unwrap().len, 256);
    }

    #[test]
    fn attributes_set_and_resolved() {
        let mut t = table();
        let mut acc = Vec::new();
        t.insert(sc(3), 0, 1024, 0, &mut acc);
        t.set_attr(
            sc(3),
            0,
            VteAttr {
                valid: true,
                global: true,
                privileged: true,
                global_perm: Perm::RX,
            },
            &mut acc,
        );
        let base = t.codec().base_of(sc(3), 0).unwrap();
        let rec = t.lookup(base, PdId(77), &mut acc).unwrap();
        assert!(rec.global && rec.privileged);
        assert_eq!(rec.perm, Perm::RX);
    }

    #[test]
    #[should_panic(expected = "double insert")]
    fn double_insert_panics() {
        let mut t = table();
        let mut acc = Vec::new();
        t.insert(sc(0), 0, 128, 0, &mut acc);
        t.insert(sc(0), 0, 128, 0, &mut acc);
    }

    #[test]
    fn footprint_matches_slot_count() {
        let t = table();
        assert_eq!(t.footprint_bytes(), t.codec().total_slots() as u64 * 64);
    }
}
