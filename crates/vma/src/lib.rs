//! # jord-vma — Jord's VMA machinery (§4.1, Figures 6 & 8)
//!
//! The key data structures of the paper's co-design, as software:
//!
//! * [`SizeClass`] — the 26 power-of-two size classes (128 B … 4 GiB) that
//!   categorize VMA allocations, inspired by segregated-list heap allocators.
//! * [`VaCodec`] — the size-class-embedded virtual-address encoding
//!   (Figure 6): `[Top | SC | Index | Offset]`. The encoding statically
//!   partitions the VA space among classes and makes the VMA-table slot of
//!   any address a pure function of its bits — no lookup structure needed.
//! * [`Vte`] — a VMA table entry (Figure 8): one cache block holding the
//!   mapping, attribute bits (Global, Privilege), a 20-entry sub-array of
//!   (PD id, permission) pairs, and an overflow pointer for VMAs with more
//!   than 20 sharers.
//! * [`PlainListTable`] — the plain-list VMA table: a flat array of VTEs
//!   addressed by `f(SC, Index)`, shared verbatim between software (PrivLib)
//!   and hardware (the VTW walks the same list).
//! * [`BTreeTable`] — the Jord_BT ablation (§6.2, Figure 13): the same VMA
//!   metadata behind a B-tree index, with node traversals and rebalancing
//!   charged as memory accesses.
//! * [`FreeLists`] / [`PhysAllocator`] — segregated free lists of VMA slots
//!   and the OS-reserved physical chunk pool that backs them (§4.4).
//!
//! Every table operation reports the memory accesses it performed (VTE and
//! index-node reads/writes) as [`TableAccess`] records; `jord-privlib`
//! charges those against the `jord-hw` machine, which is how plain-list vs
//! B-tree latency differences (2 ns vs ~20 ns VLB miss penalty, +167 %
//! management time) arise from first principles rather than constants.

pub mod btree;
pub mod codec;
pub mod free_list;
pub mod phys;
pub mod size_class;
pub mod snapshot;
pub mod table;
pub mod vte;

pub use btree::BTreeTable;
pub use codec::VaCodec;
pub use free_list::FreeLists;
pub use phys::PhysAllocator;
pub use size_class::SizeClass;
pub use snapshot::{PdSnapshot, SnapshotDiff, SnapshotEntry, TableSnapshot};
pub use table::{PlainListTable, TableAccess, VmaRecord, VmaTable};
pub use vte::{Vte, VteAttr, SUB_ARRAY_LEN};
