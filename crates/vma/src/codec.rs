//! The size-class-embedded VA encoding (Figure 6) and the plain-list slot
//! function `f(SC, Index)`.
//!
//! A Jord virtual address is `[Top | SC | Index | Offset]` within a 48-bit
//! canonical VA:
//!
//! ```text
//!  47      43 42      38 37                    (7+k) (6+k)        0
//! +----------+----------+--------------------------+----------------+
//! |  Top tag |  SC = k  |          Index           |     Offset     |
//! +----------+----------+--------------------------+----------------+
//! ```
//!
//! The offset field is exactly as wide as the class's chunk (`7+k` bits for
//! class *k*), so the base of every VMA is recoverable from the address by
//! masking — this is what lets the VTW compute the VTE address with no
//! memory access. `f(SC, Index) = Index × 26 + SC` interleaves classes
//! evenly in the plain list, as in the paper's "simple two-input injective
//! function".
//!
//! With 26 classes the SC field costs 5 bits of ASLR entropy; the smallest
//! class retains 31 index bits here (the paper's 47-bit layout retains 29 —
//! same order, same trade-off).

use jord_hw::types::{Va, VteAddr};

use crate::size_class::{SizeClass, NUM_CLASSES};

/// Width of the Top tag and SC fields.
const TAG_BITS: u32 = 5;
const SC_SHIFT: u32 = 38;
const TAG_SHIFT: u32 = 43;
/// Bits available below the SC field for Index + Offset.
const BODY_BITS: u32 = SC_SHIFT;

/// Bytes per VMA table entry: one cache block (Figure 8 spans 512 bits).
pub const VTE_BYTES: u64 = 64;

/// The VA encoding scheme, as configured through the `uatc` CSR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaCodec {
    top_tag: u8,
    per_class_capacity: u32,
}

impl VaCodec {
    /// Default Top tag for Jord-managed VAs.
    pub const DEFAULT_TAG: u8 = 0b11010;

    /// Creates a codec with the given Top tag (5 bits) and per-class VMA
    /// capacity (power of two). Large classes are automatically capped by
    /// their available index bits.
    ///
    /// # Panics
    ///
    /// Panics if the tag exceeds 5 bits, or the capacity is zero or not a
    /// power of two.
    pub fn new(top_tag: u8, per_class_capacity: u32) -> Self {
        assert!(top_tag < 32, "top tag must fit in 5 bits");
        assert!(
            per_class_capacity > 0 && per_class_capacity.is_power_of_two(),
            "per-class capacity must be a positive power of two"
        );
        VaCodec {
            top_tag,
            per_class_capacity,
        }
    }

    /// The default scheme used by the experiments: tag `0b11010`, 4096 VMAs
    /// per size class (≈ 106 K VTEs, a 6.6 MB plain list).
    pub fn isca25() -> Self {
        VaCodec::new(Self::DEFAULT_TAG, 4096)
    }

    /// Maximum number of VMAs of class `sc` (configured capacity, capped by
    /// the class's index-field width).
    pub fn capacity(&self, sc: SizeClass) -> u32 {
        let index_bits = BODY_BITS - sc.offset_bits();
        let hard = if index_bits >= 32 {
            u32::MAX
        } else {
            1u32 << index_bits
        };
        self.per_class_capacity.min(hard)
    }

    /// Total plain-list slots implied by this codec (classes × capacity,
    /// interleaved; slots of capped classes beyond their hard limit are
    /// simply never used — the list is "preallocated and overprovisioned").
    pub fn total_slots(&self) -> usize {
        self.per_class_capacity as usize * NUM_CLASSES as usize
    }

    /// True if `va` carries this codec's Top tag (only such VAs take the
    /// Jord translation path; all others fall through to paged memory).
    pub fn matches(&self, va: Va) -> bool {
        (va >> TAG_SHIFT) as u8 & 0x1F == self.top_tag && va >> (TAG_SHIFT + TAG_BITS) == 0
    }

    /// Encodes `(class, index, offset)` into a VA.
    ///
    /// Returns `None` if `index` exceeds the class capacity or `offset`
    /// exceeds the class chunk size.
    pub fn encode(&self, sc: SizeClass, index: u32, offset: u64) -> Option<Va> {
        if index >= self.capacity(sc) || offset >= sc.bytes() {
            return None;
        }
        Some(
            ((self.top_tag as u64) << TAG_SHIFT)
                | ((sc.index() as u64) << SC_SHIFT)
                | ((index as u64) << sc.offset_bits())
                | offset,
        )
    }

    /// The base address of VMA `(class, index)`.
    pub fn base_of(&self, sc: SizeClass, index: u32) -> Option<Va> {
        self.encode(sc, index, 0)
    }

    /// Decodes a VA into `(class, index, offset)`.
    ///
    /// Returns `None` if the tag mismatches, the SC field is invalid, or
    /// the index exceeds capacity.
    pub fn decode(&self, va: Va) -> Option<(SizeClass, u32, u64)> {
        if !self.matches(va) {
            return None;
        }
        let sc = SizeClass::from_index(((va >> SC_SHIFT) & 0x1F) as u8)?;
        let body = va & ((1u64 << BODY_BITS) - 1);
        let index = (body >> sc.offset_bits()) as u32;
        let offset = body & (sc.bytes() - 1);
        if index >= self.capacity(sc) {
            return None;
        }
        Some((sc, index, offset))
    }

    /// The plain-list slot of VMA `(class, index)`:
    /// `f(SC, Index) = Index × NUM_CLASSES + SC` (even interleave).
    pub fn slot_of(&self, sc: SizeClass, index: u32) -> usize {
        index as usize * NUM_CLASSES as usize + sc.index() as usize
    }

    /// Inverse of [`slot_of`](Self::slot_of).
    pub fn slot_to_vma(&self, slot: usize) -> (SizeClass, u32) {
        let sc = SizeClass::from_index((slot % NUM_CLASSES as usize) as u8)
            .expect("slot modulus is a valid class");
        (sc, (slot / NUM_CLASSES as usize) as u32)
    }

    /// The memory address of the VTE for `(class, index)` given the table
    /// base from `uatp` — the closed form `A_VTE = A_Base + f(SC, Index)`
    /// of §4.1 (scaled by the 64 B entry size).
    pub fn vte_addr(&self, table_base: u64, sc: SizeClass, index: u32) -> VteAddr {
        VteAddr(table_base + self.slot_of(sc, index) as u64 * VTE_BYTES)
    }

    /// Packs the scheme into the `uatc` CSR image.
    pub fn to_uatc(&self) -> u64 {
        (self.top_tag as u64) | ((self.per_class_capacity as u64) << 8)
    }

    /// Unpacks a `uatc` CSR image.
    ///
    /// Returns `None` if the image encodes an invalid scheme.
    pub fn from_uatc(value: u64) -> Option<Self> {
        let tag = (value & 0x1F) as u8;
        let cap = (value >> 8) as u32;
        if cap == 0 || !cap.is_power_of_two() {
            return None;
        }
        Some(VaCodec::new(tag, cap))
    }
}

impl Default for VaCodec {
    fn default() -> Self {
        VaCodec::isca25()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let c = VaCodec::isca25();
        for sc in SizeClass::all() {
            let cap = c.capacity(sc);
            for index in [0, 1, cap / 2, cap - 1] {
                let offset = sc.bytes() - 1;
                let va = c.encode(sc, index, offset).unwrap();
                assert!(c.matches(va));
                assert_eq!(c.decode(va), Some((sc, index, offset)));
            }
        }
    }

    #[test]
    fn classes_partition_the_va_space() {
        // Distinct (sc, index) pairs must give disjoint VMA ranges.
        let c = VaCodec::isca25();
        let a = c.base_of(SizeClass::from_index(0).unwrap(), 0).unwrap();
        let b = c.base_of(SizeClass::from_index(0).unwrap(), 1).unwrap();
        assert!(b >= a + 128);
        let big = c.base_of(SizeClass::from_index(10).unwrap(), 0).unwrap();
        assert_ne!(a >> SC_SHIFT, big >> SC_SHIFT, "different SC fields");
    }

    #[test]
    fn foreign_vas_do_not_match() {
        let c = VaCodec::isca25();
        assert!(!c.matches(0x7fff_0000_0000));
        assert!(!c.matches(0));
        // Correct tag bits but non-canonical high bits.
        let va = c.encode(SizeClass::MIN, 0, 0).unwrap();
        assert!(!c.matches(va | (1 << 50)));
    }

    #[test]
    fn capacity_capped_for_large_classes() {
        let c = VaCodec::isca25();
        // 4 GiB class has 38-32 = 6 index bits → 64 VMAs max.
        assert_eq!(c.capacity(SizeClass::MAX), 64);
        assert_eq!(c.capacity(SizeClass::MIN), 4096);
        assert!(c.encode(SizeClass::MAX, 64, 0).is_none());
        assert!(c.encode(SizeClass::MAX, 63, 0).is_some());
    }

    #[test]
    fn encode_rejects_out_of_range() {
        let c = VaCodec::isca25();
        assert!(c.encode(SizeClass::MIN, 4096, 0).is_none());
        assert!(c.encode(SizeClass::MIN, 0, 128).is_none());
    }

    #[test]
    fn slot_function_is_injective_and_interleaved() {
        let c = VaCodec::isca25();
        let mut seen = std::collections::HashSet::new();
        for sc in SizeClass::all() {
            for index in 0..64u32 {
                assert!(seen.insert(c.slot_of(sc, index)), "slot collision");
            }
        }
        // Consecutive indices of one class are NUM_CLASSES slots apart.
        let sc = SizeClass::MIN;
        assert_eq!(c.slot_of(sc, 1) - c.slot_of(sc, 0), 26);
        // Round trip.
        for slot in [0usize, 1, 25, 26, 27, 1000] {
            let (sc, idx) = c.slot_to_vma(slot);
            assert_eq!(c.slot_of(sc, idx), slot);
        }
    }

    #[test]
    fn vte_addr_closed_form() {
        let c = VaCodec::isca25();
        let base = 0x100_0000;
        let sc = SizeClass::from_index(3).unwrap();
        let vte = c.vte_addr(base, sc, 2);
        assert_eq!(vte.0, base + (2 * 26 + 3) as u64 * 64);
    }

    #[test]
    fn uatc_roundtrip() {
        let c = VaCodec::new(7, 1024);
        assert_eq!(VaCodec::from_uatc(c.to_uatc()), Some(c));
        assert!(VaCodec::from_uatc(0).is_none()); // zero capacity
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = VaCodec::new(1, 100);
    }
}
