//! # criterion (offline shim)
//!
//! A minimal, dependency-free stand-in for the [`criterion`] crate,
//! implementing exactly the API surface this workspace's benches use:
//! [`Criterion`] with `sample_size`/`measurement_time`/`warm_up_time`,
//! `bench_function`, `benchmark_group`, [`Bencher::iter`] /
//! [`Bencher::iter_batched_ref`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Unlike real Criterion there is no statistical analysis, outlier
//! rejection, or HTML report: each benchmark runs a short warm-up, then
//! wall-clock-times `sample_size × per-sample iterations` and prints the
//! mean time per iteration. That is enough to exercise the bench code
//! paths and give order-of-magnitude numbers in an offline environment.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// How setup output is amortized in `iter_batched*`; the shim treats all
/// variants identically (fresh setup per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Larger per-iteration state.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// The benchmark driver: holds the sampling configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            config: self.clone(),
            result_ns: 0.0,
        };
        f(&mut b);
        println!("{name:<40} {:>12.1} ns/iter", b.result_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { parent: self }
    }
}

/// A group of related benchmarks sharing a printed heading.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.parent.bench_function(&format!("  {name}"), f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter*` does the timing.
pub struct Bencher {
    config: Criterion,
    result_ns: f64,
}

impl Bencher {
    /// Budget per measured sample.
    fn per_sample(&self) -> Duration {
        self.config.measurement_time / self.config.sample_size.max(1) as u32
    }

    /// Times `routine`, autoscaling iteration count to the sample budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, and calibrate how many iterations fit in one sample.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.per_sample().as_secs_f64();
        let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        let mut count: u64 = 0;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            count += iters;
        }
        self.result_ns = total.as_secs_f64() * 1e9 / count.max(1) as f64;
    }

    /// Like [`Bencher::iter`], but with a fresh `setup` value per iteration,
    /// passed by mutable reference; setup time is excluded from the measure.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            let mut input = setup();
            std::hint::black_box(routine(&mut input));
        }

        // Iteration count per sample is bounded, not calibrated: setup cost
        // is unknown and excluded, so a time budget could over-run badly.
        let iters: u64 = 64;
        let mut total = Duration::ZERO;
        let mut count: u64 = 0;
        for _ in 0..self.config.sample_size {
            for _ in 0..iters {
                let mut input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(&mut input));
                total += start.elapsed();
                count += 1;
            }
        }
        self.result_ns = total.as_secs_f64() * 1e9 / count.max(1) as f64;
    }
}

/// Declares a benchmark group function, matching real Criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
