//! Scratch calibration probe (not part of the published benches).
use jord_workloads::*;

fn main() {
    for kind in WorkloadKind::ALL {
        let w = Workload::build(kind);
        let slo = measure_slo(&w, 0.05e6, 2000).expect("probe produced latencies");
        eprintln!(
            "== {} | SLO {:.1} us | inv/req {:.1}",
            w.name(),
            slo.as_us_f64(),
            w.mean_invocations_per_request()
        );
        for sys in [
            System::JordNi,
            System::Jord,
            System::JordBt,
            System::NightCore,
        ] {
            // coarse sweep
            let loads: Vec<f64> = [
                0.1, 0.3, 0.5, 0.8, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0,
            ]
            .iter()
            .map(|x| x * 1e6)
            .collect();
            let mut line = format!("  {:10}", sys.label());
            let mut best = 0.0f64;
            for &rate in &loads {
                let rep = runner::RunSpec::new(sys, rate).requests(6000, 600).run(&w);
                let p99 = rep.p99().unwrap().as_us_f64();
                line += &format!(" {:.0}:{:.1}", rate / 1e6, p99);
                if p99 <= slo.as_us_f64() {
                    best = best.max(rate);
                }
                if p99 > 6.0 * slo.as_us_f64() {
                    break;
                }
            }
            eprintln!("{line}  | best {:.2} MRPS", best / 1e6);
        }
    }
}
