//! # jord-bench — harnesses that regenerate the paper's tables and figures
//!
//! One bench target per evaluation artifact (run with `cargo bench`):
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `table4_op_latency` | Table 4 — VMA/PD operation latencies (simulator + FPGA models) |
//! | `fig9_performance` | Figure 9 — p99 latency vs load, Jord/Jord_NI/NightCore, 4 workloads |
//! | `fig10_service_cdf` | Figure 10 — CDF of function service time |
//! | `fig11_breakdown` | Figure 11 — service-time breakdown for the 8 selected functions |
//! | `fig12_vlb_sensitivity` | Figure 12 — I-VLB/D-VLB entry-count sensitivity |
//! | `fig13_btree` | Figure 13 — Jord_BT vs Jord (plus the §6.2 PrivLib time comparison) |
//! | `fig14_scalability` | Figure 14 — service/shootdown/dispatch latencies vs system scale |
//! | `host_vma_tables` | Criterion host-side microbenchmarks of the table data structures |
//! | `engine_queue` | Criterion microbenchmarks of the calendar event queue vs the heap baseline |
//!
//! Each harness prints the same rows/series the paper reports, next to the
//! paper's own numbers where the paper states them. Absolute values are not
//! expected to match a cycle-accurate simulator of different software — the
//! *shape* (who wins, by what factor, where crossovers fall) is the
//! reproduction target. `EXPERIMENTS.md` records paper-vs-measured for every
//! artifact.
//!
//! Runs are sized for a small machine; set `JORD_BENCH_REQUESTS` to raise or
//! lower the per-point request count (default 5000).

pub mod engine;

use jord_sim::SimDuration;
use jord_workloads::{runner::RunSpec, System, Workload};

/// Per-point measured request count (override with `JORD_BENCH_REQUESTS`).
pub fn requests_per_point() -> usize {
    std::env::var("JORD_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000)
}

/// Formats a duration as microseconds with two decimals.
pub fn us(d: SimDuration) -> String {
    format!("{:.2}", d.as_us_f64())
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Prints one aligned row.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", line.join(" "));
}

/// A standard load sweep for a (system, workload) pair: returns
/// `(rate_rps, p99_us)` per point.
pub fn sweep(
    system: System,
    workload: &Workload,
    loads_mrps: &[f64],
    requests: usize,
) -> Vec<(f64, f64)> {
    loads_mrps
        .iter()
        .map(|&mrps| {
            let rep = RunSpec::new(system, mrps * 1e6)
                .requests(requests, requests / 10 + 100)
                .run(workload);
            (mrps, rep.p99().expect("completed requests").as_us_f64())
        })
        .collect()
}

/// The highest load (MRPS) in `points` whose p99 met `slo_us`.
pub fn best_under_slo(points: &[(f64, f64)], slo_us: f64) -> f64 {
    points
        .iter()
        .filter(|(_, p99)| *p99 <= slo_us)
        .map(|(r, _)| *r)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_under_slo_picks_highest_passing_load() {
        let pts = [(1.0, 5.0), (2.0, 8.0), (3.0, 40.0), (4.0, 400.0)];
        assert_eq!(best_under_slo(&pts, 10.0), 2.0);
        assert_eq!(best_under_slo(&pts, 4.0), 0.0);
        assert_eq!(best_under_slo(&pts, 1000.0), 4.0);
    }

    #[test]
    fn env_override_parses() {
        // Default path (no env set in tests).
        assert!(requests_per_point() >= 1);
    }
}
