//! Engine microbenchmarks: the calendar [`EventQueue`] against the
//! recorded [`BaselineHeap`] it replaced.
//!
//! Three synthetic workloads bracket the DES hot path:
//!
//! * **Hold model** — the classic event-queue benchmark: a steady-state
//!   queue of fixed size where every iteration pops the front and
//!   schedules a successor a random gap ahead. This is exactly what a
//!   saturated worker server does all day.
//! * **Transient** — schedule `n` events, then pop all `n`: the burst
//!   pattern of campaign setup (`push_request` loops) and teardown.
//! * **Cancel storm** — schedule, cancel half, pop the rest. The heap
//!   side cancels through its pre-refactor `remove_first`
//!   (scan + drain-and-rebuild); the calendar side cancels by
//!   [`EventId`](jord_sim::EventId) tombstone.
//!
//! Both sides of every pair consume identical RNG streams and fold every
//! popped `(time, payload)` into a checksum; a pair is only valid if the
//! checksums agree, so the speedup can never come from doing different
//! (or dead-code-eliminated) work.

use std::hint::black_box;
use std::time::Instant;

use jord_sim::oracle::BaselineHeap;
use jord_sim::{EventQueue, Rng, SimTime};

/// Pop-gap upper bound (picoseconds) for the synthetic schedules: 10 µs,
/// the same order as the cluster's heartbeat/window cadence.
const GAP_PS: u64 = 10_000_000;

/// One heap-vs-calendar measurement.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Workload name (`hold`, `transient`, `cancel`).
    pub name: &'static str,
    /// Queue operations performed per side (schedules + pops + cancels).
    pub events: u64,
    /// Baseline heap throughput, operations per second.
    pub heap_eps: f64,
    /// Calendar queue throughput, operations per second.
    pub calendar_eps: f64,
    /// Both sides produced the same pop checksum (they must).
    pub checksums_match: bool,
}

impl MicroResult {
    /// Calendar speedup over the heap baseline.
    pub fn speedup(&self) -> f64 {
        self.calendar_eps / self.heap_eps
    }
}

/// The hold model: prefill `prefill` events, then `ops` iterations of
/// pop-front + schedule-successor. Throughput counts both the pop and the
/// schedule of each hold.
pub fn hold_model(prefill: usize, ops: u64, seed: u64) -> MicroResult {
    let (heap_s, heap_sum) = {
        let mut q = BaselineHeap::new();
        let mut rng = Rng::new(seed);
        for i in 0..prefill {
            q.push(SimTime::from_ps(rng.next_below(GAP_PS)), i as u64);
        }
        let start = Instant::now();
        let mut sum = 0u64;
        for _ in 0..ops {
            let (t, e) = q.pop().expect("hold queue never empties");
            sum = sum.wrapping_add(t.as_ps()).wrapping_add(e);
            q.push(SimTime::from_ps(t.as_ps() + 1 + rng.next_below(GAP_PS)), e);
        }
        (start.elapsed().as_secs_f64(), black_box(sum))
    };
    let (cal_s, cal_sum) = {
        let mut q = EventQueue::new();
        let mut rng = Rng::new(seed);
        for i in 0..prefill {
            q.push(SimTime::from_ps(rng.next_below(GAP_PS)), i as u64);
        }
        let start = Instant::now();
        let mut sum = 0u64;
        for _ in 0..ops {
            let (t, e) = q.pop().expect("hold queue never empties");
            sum = sum.wrapping_add(t.as_ps()).wrapping_add(e);
            q.push(SimTime::from_ps(t.as_ps() + 1 + rng.next_below(GAP_PS)), e);
        }
        (start.elapsed().as_secs_f64(), black_box(sum))
    };
    MicroResult {
        name: "hold",
        events: ops * 2,
        heap_eps: ops as f64 * 2.0 / heap_s,
        calendar_eps: ops as f64 * 2.0 / cal_s,
        checksums_match: heap_sum == cal_sum,
    }
}

/// Transient burst: schedule `n` events at random instants, pop them all.
pub fn transient(n: usize, seed: u64) -> MicroResult {
    let (heap_s, heap_sum) = {
        let mut q = BaselineHeap::new();
        let mut rng = Rng::new(seed);
        let start = Instant::now();
        for i in 0..n {
            q.push(SimTime::from_ps(rng.next_below(GAP_PS * 100)), i as u64);
        }
        let mut sum = 0u64;
        while let Some((t, e)) = q.pop() {
            sum = sum.wrapping_add(t.as_ps()).wrapping_add(e);
        }
        (start.elapsed().as_secs_f64(), black_box(sum))
    };
    let (cal_s, cal_sum) = {
        let mut q = EventQueue::new();
        let mut rng = Rng::new(seed);
        let start = Instant::now();
        // The burst goes through `schedule_batch`: the exact size hint
        // pre-sizes the slab, and bucket geometry is computed once from
        // the whole burst instead of re-growing under the push loop.
        q.schedule_batch(
            (0..n).map(|i| (SimTime::from_ps(rng.next_below(GAP_PS * 100)), i as u64)),
        );
        let mut sum = 0u64;
        while let Some((t, e)) = q.pop() {
            sum = sum.wrapping_add(t.as_ps()).wrapping_add(e);
        }
        (start.elapsed().as_secs_f64(), black_box(sum))
    };
    MicroResult {
        name: "transient",
        events: n as u64 * 2,
        heap_eps: n as f64 * 2.0 / heap_s,
        calendar_eps: n as f64 * 2.0 / cal_s,
        checksums_match: heap_sum == cal_sum,
    }
}

/// Cancel storm: schedule `n`, cancel every other event, pop the
/// survivors. The heap cancels through the pre-refactor predicate
/// `remove_first` (linear scan + full drain-and-rebuild); the calendar
/// cancels by handle in O(1).
pub fn cancel_storm(n: usize, seed: u64) -> MicroResult {
    let cancels = n / 2;
    let ops = n as u64 + cancels as u64 + (n - cancels) as u64;
    let (heap_s, heap_sum) = {
        let mut q = BaselineHeap::new();
        let mut rng = Rng::new(seed);
        let start = Instant::now();
        for i in 0..n {
            q.push(SimTime::from_ps(rng.next_below(GAP_PS)), i as u64);
        }
        for victim in (0..n as u64).step_by(2) {
            q.remove_first(|&e| e == victim).expect("victim is pending");
        }
        let mut sum = 0u64;
        while let Some((t, e)) = q.pop() {
            sum = sum.wrapping_add(t.as_ps()).wrapping_add(e);
        }
        (start.elapsed().as_secs_f64(), black_box(sum))
    };
    let (cal_s, cal_sum) = {
        let mut q = EventQueue::new();
        let mut rng = Rng::new(seed);
        let start = Instant::now();
        let ids: Vec<_> = (0..n)
            .map(|i| q.schedule(SimTime::from_ps(rng.next_below(GAP_PS)), i as u64))
            .collect();
        for victim in (0..n).step_by(2) {
            assert!(q.cancel(ids[victim]).is_cancelled());
        }
        let mut sum = 0u64;
        while let Some((t, e)) = q.pop() {
            sum = sum.wrapping_add(t.as_ps()).wrapping_add(e);
        }
        (start.elapsed().as_secs_f64(), black_box(sum))
    };
    MicroResult {
        name: "cancel",
        events: ops,
        heap_eps: ops as f64 / heap_s,
        calendar_eps: ops as f64 / cal_s,
        checksums_match: heap_sum == cal_sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_pairs_agree_on_checksums() {
        // Tiny sizes: correctness of the pairing, not performance.
        assert!(hold_model(256, 2_000, 11).checksums_match);
        assert!(transient(2_000, 12).checksums_match);
        assert!(cancel_storm(500, 13).checksums_match);
    }
}
