//! Criterion host-side microbenchmarks of the event-queue hot path.
//!
//! The calendar [`EventQueue`] against the recorded pre-refactor
//! [`BaselineHeap`], on the three operations the simulator spends its
//! time in: the hold model (pop front + schedule successor at steady
//! state), a schedule/drain burst, and cancellation. The gated
//! pass/fail comparison lives in `examples/engine_bench.rs`; this
//! harness is for profiling the same shapes under criterion's sampler.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use jord_sim::oracle::BaselineHeap;
use jord_sim::{EventQueue, Rng, SimTime};

/// Pop-gap upper bound, matching `jord_bench::engine::GAP_PS`: 10 µs.
const GAP_PS: u64 = 10_000_000;
const PREFILL: usize = 65_536;

fn bench_hold(c: &mut Criterion) {
    let mut group = c.benchmark_group("hold_64k_pending");
    let mut rng = Rng::new(42);
    let mut heap = BaselineHeap::new();
    let mut cal = EventQueue::new();
    for i in 0..PREFILL {
        let t = SimTime::from_ps(rng.next_below(GAP_PS));
        heap.push(t, i as u64);
        cal.push(t, i as u64);
    }
    group.bench_function("heap", |b| {
        b.iter(|| {
            let (t, e) = heap.pop().expect("held");
            heap.push(SimTime::from_ps(t.as_ps() + 1 + rng.next_below(GAP_PS)), e);
            black_box(t)
        })
    });
    group.bench_function("calendar", |b| {
        b.iter(|| {
            let (t, e) = cal.pop().expect("held");
            cal.push(SimTime::from_ps(t.as_ps() + 1 + rng.next_below(GAP_PS)), e);
            black_box(t)
        })
    });
    group.finish();
}

fn bench_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("burst_4k_schedule_drain");
    group.bench_function("heap", |b| {
        b.iter_batched_ref(
            || Rng::new(42),
            |rng| {
                let mut q = BaselineHeap::new();
                for i in 0..4_096u64 {
                    q.push(SimTime::from_ps(rng.next_below(GAP_PS * 100)), i);
                }
                let mut sum = 0u64;
                while let Some((t, _)) = q.pop() {
                    sum = sum.wrapping_add(t.as_ps());
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("calendar", |b| {
        b.iter_batched_ref(
            || Rng::new(42),
            |rng| {
                let mut q = EventQueue::new();
                for i in 0..4_096u64 {
                    q.push(SimTime::from_ps(rng.next_below(GAP_PS * 100)), i);
                }
                let mut sum = 0u64;
                while let Some((t, _)) = q.pop() {
                    sum = sum.wrapping_add(t.as_ps());
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_cancel(c: &mut Criterion) {
    let mut group = c.benchmark_group("cancel_in_4k_pending");
    group.bench_function("heap_remove_first", |b| {
        b.iter_batched_ref(
            || {
                let mut rng = Rng::new(42);
                let mut q = BaselineHeap::new();
                for i in 0..4_096u64 {
                    q.push(SimTime::from_ps(rng.next_below(GAP_PS)), i);
                }
                q
            },
            |q| black_box(q.remove_first(|&e| e == 2_048)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("calendar_tombstone", |b| {
        b.iter_batched_ref(
            || {
                let mut rng = Rng::new(42);
                let mut q = EventQueue::new();
                let ids: Vec<_> = (0..4_096u64)
                    .map(|i| q.schedule(SimTime::from_ps(rng.next_below(GAP_PS)), i))
                    .collect();
                (q, ids)
            },
            |(q, ids)| black_box(q.cancel(ids[2_048])),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_hold, bench_burst, bench_cancel);
criterion_main!(benches);
