//! **Figure 10** — cumulative distribution of function service time in Jord.
//!
//! The paper's observations this harness reproduces: across the workloads,
//! ~75 % of function service times fall below ~5 µs; Media and Social show
//! long tails, with Social reaching ~75 µs (ComposePost).

use jord_bench::{header, requests_per_point, row};
use jord_workloads::{runner::RunSpec, System, Workload, WorkloadKind};

fn main() {
    let n = requests_per_point();
    header("Figure 10: CDF of function service time in Jord (low load)");
    row(&[
        "workload".into(),
        "p25(us)".into(),
        "p50(us)".into(),
        "p75(us)".into(),
        "p90(us)".into(),
        "p99(us)".into(),
        "max(us)".into(),
    ]);

    let mut cdfs = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = Workload::build(kind);
        // Low load: far below each workload's saturation.
        let rate = match kind {
            WorkloadKind::Hipster => 1.0e6,
            WorkloadKind::Hotel => 0.7e6,
            WorkloadKind::Media => 0.3e6,
            WorkloadKind::Social => 0.08e6,
        };
        let rep = RunSpec::new(System::Jord, rate)
            .requests(n, n / 10 + 100)
            .run(&w);
        let q = |x: f64| rep.service.quantile(x).unwrap().as_us_f64();
        row(&[
            w.name().into(),
            format!("{:.2}", q(0.25)),
            format!("{:.2}", q(0.50)),
            format!("{:.2}", q(0.75)),
            format!("{:.2}", q(0.90)),
            format!("{:.2}", q(0.99)),
            format!("{:.2}", rep.service.max().unwrap().as_us_f64()),
        ]);
        cdfs.push((kind, rep.service.clone()));
    }

    // Full CDF series (downsampled to ~25 points each), for plotting.
    for (kind, hist) in &cdfs {
        header(&format!(
            "Figure 10 series: {} (service_us, cdf)",
            kind.name()
        ));
        let pts = hist.cdf_points();
        let step = (pts.len() / 25).max(1);
        for (i, (d, f)) in pts.iter().enumerate() {
            if i % step == 0 || i + 1 == pts.len() {
                println!("{:.3}, {:.4}", d.as_us_f64(), f);
            }
        }
    }

    // The paper's two headline checks.
    println!();
    for (kind, hist) in &cdfs {
        let p75 = hist.quantile(0.75).unwrap().as_us_f64();
        println!(
            "check: {} p75 = {p75:.2} us (paper: ~75% of service times below ~5 us)",
            kind.name()
        );
    }
    let social = &cdfs[3].1;
    println!(
        "check: Social tail reaches {:.1} us (paper: ~75 us ComposePost)",
        social.quantile(0.999).unwrap().as_us_f64()
    );
}
