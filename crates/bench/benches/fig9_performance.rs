//! **Figure 9** — p99 latency vs load for Jord, Jord_NI, and NightCore on
//! all four workloads, plus the throughput-under-SLO summary.
//!
//! SLO = 10× the minimal-load service time on Jord_NI (§5). The paper's
//! headline results this harness reproduces:
//! * Jord within ~16 % of Jord_NI (Media excepted, ~70 %),
//! * over 2× NightCore's throughput under SLO,
//! * NightCore failing the SLO at any load on the communication-heavy
//!   workloads (Hipster, Media).

use jord_bench::{best_under_slo, header, requests_per_point, row, sweep};
use jord_workloads::{measure_slo, System, Workload, WorkloadKind};

/// Per-workload load grids (MRPS), shaped around each one's capacity.
fn grid(kind: WorkloadKind) -> Vec<f64> {
    match kind {
        WorkloadKind::Hipster => vec![0.5, 2.0, 4.0, 6.0, 8.0, 10.0, 11.0, 12.0, 13.0, 14.0, 16.0],
        WorkloadKind::Hotel => vec![0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        WorkloadKind::Media => vec![0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0],
        WorkloadKind::Social => vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4],
    }
}

fn main() {
    let n = requests_per_point();
    let systems = [System::JordNi, System::Jord, System::NightCore];
    let mut summary: Vec<(WorkloadKind, [f64; 3], f64)> = Vec::new();

    for kind in WorkloadKind::ALL {
        let w = Workload::build(kind);
        let slo = measure_slo(&w, 0.05e6, (n / 4).max(500)).expect("probe produced latencies");
        let slo_us = slo.as_us_f64();
        header(&format!(
            "Figure 9: {} — p99 latency (us) vs load (MRPS); SLO = {slo_us:.1} us",
            w.name()
        ));

        let loads = grid(kind);
        let mut head = vec!["MRPS".to_string()];
        head.extend(systems.iter().map(|s| s.label().to_string()));
        row(&head);

        let curves: Vec<Vec<(f64, f64)>> = systems
            .iter()
            .map(|&sys| sweep(sys, &w, &loads, n))
            .collect();
        for (i, &mrps) in loads.iter().enumerate() {
            let mut cells = vec![format!("{mrps:.2}")];
            for curve in &curves {
                cells.push(format!("{:.1}", curve[i].1));
            }
            row(&cells);
        }
        let bests = [
            best_under_slo(&curves[0], slo_us),
            best_under_slo(&curves[1], slo_us),
            best_under_slo(&curves[2], slo_us),
        ];
        summary.push((kind, bests, slo_us));
    }

    header("Figure 9 summary: throughput under SLO (MRPS)");
    row(&[
        "workload".into(),
        "Jord_NI".into(),
        "Jord".into(),
        "NightCore".into(),
        "Jord/NI".into(),
        "Jord/NC".into(),
        "paper".into(),
    ]);
    let paper = ["Jord 12", "Jord 7", "Jord ~NI*0.7", "Jord 0.9"];
    for (i, (kind, b, _slo)) in summary.iter().enumerate() {
        let ni_ratio = if b[0] > 0.0 { b[1] / b[0] } else { f64::NAN };
        let nc_ratio = if b[2] > 0.0 {
            b[1] / b[2]
        } else {
            f64::INFINITY
        };
        row(&[
            kind.name().into(),
            format!("{:.2}", b[0]),
            format!("{:.2}", b[1]),
            format!("{:.2}", b[2]),
            format!("{:.2}", ni_ratio),
            if nc_ratio.is_finite() {
                format!("{nc_ratio:.1}x")
            } else {
                "inf (NC fails SLO)".into()
            },
            paper[i].into(),
        ]);
    }
}
