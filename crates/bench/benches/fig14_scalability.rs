//! **Figure 14** — sensitivity of average function service time, VLB
//! shootdown latency, and dispatch latency to the system scale
//! (16/64/128/256 cores single-socket, plus 2×128 dual-socket).
//!
//! The service-time series is workload-driven; the shootdown and dispatch
//! series are the paper's worst-case microbenchmarks:
//! * shootdown — every core shares the translation; the writer waits on
//!   the furthest core's ack (sublinear growth with mesh diameter);
//! * dispatch — a single orchestrator JBSQ-scans every executor whose
//!   queue line was just modified (one coherence message per executor;
//!   cross-socket latencies push it to ~12 µs at 2×128 cores).

use jord_bench::{header, requests_per_point, row};
use jord_hw::types::{CoreId, PdId, Perm, VteAddr};
use jord_hw::{Machine, MachineConfig, VlbKind};
use jord_sim::SimDuration;
use jord_workloads::{runner::RunSpec, System, Workload, WorkloadKind};

/// Worst-case VLB shootdown: all cores cache the translation, core 0
/// rewrites the VTE; completion waits on the furthest sharer.
fn shootdown_worst_us(machine_cfg: &MachineConfig) -> f64 {
    let mut m = Machine::new(machine_cfg.clone());
    let samples = 16;
    let mut total = SimDuration::ZERO;
    for s in 0..samples {
        let vte = VteAddr(0x4000 + s * 64);
        for c in 0..m.config().cores {
            m.vte_read(CoreId(c), vte);
            m.vlb_fill(
                CoreId(c),
                VlbKind::Data,
                jord_hw::types::VlbEntry {
                    vte,
                    base: 0x100000 + s * 4096,
                    len: 4096,
                    pd: PdId(1),
                    global: false,
                    perm: Perm::RW,
                    privileged: false,
                },
            );
        }
        let (lat, victims) = m.vte_write(CoreId(0), vte);
        assert!(victims >= m.config().cores - 1, "all cores invalidated");
        total += lat;
    }
    (total / samples).as_us_f64()
}

/// Worst-case dispatch: one orchestrator on core 0 scans every executor's
/// queue line right after each executor modified it (so every read is a
/// coherence miss), then pushes to the chosen one. MLP overlaps the loads
/// exactly as the runtime's JBSQ scan does.
fn dispatch_worst_us(machine_cfg: &MachineConfig) -> f64 {
    let mut m = Machine::new(machine_cfg.clone());
    let orch = CoreId(0);
    let base = 0x80_0000_0000u64;
    let n_exec = m.config().cores - 1;
    let mlp = m.config().mlp as u64;
    let samples = 8;
    let mut total = SimDuration::ZERO;
    for _ in 0..samples {
        // Executors update their advertised queue state…
        for e in 0..n_exec {
            m.atomic_rmw(CoreId(e + 1), base + e as u64 * 64);
        }
        // …then the orchestrator scans all of them.
        let mut sum = SimDuration::ZERO;
        let mut worst = SimDuration::ZERO;
        for e in 0..n_exec {
            let lat = m.read(orch, base + e as u64 * 64, 8);
            sum += lat;
            worst = worst.max(lat);
        }
        let scan = worst.max(sum / mlp) + m.work(1.0 * n_exec as f64);
        let push = m.write(orch, base + 7 * 64, 64);
        total += scan + push;
    }
    (total / samples).as_us_f64()
}

fn main() {
    let n = requests_per_point();
    let w = Workload::build(WorkloadKind::Hipster);

    let scales: Vec<(&str, MachineConfig)> = vec![
        ("16-core", MachineConfig::scaled(16)),
        ("64-core", MachineConfig::scaled(64)),
        ("128-core", MachineConfig::scaled(128)),
        ("256-core", MachineConfig::scaled(256)),
        ("2-socket", MachineConfig::two_socket()),
    ];

    header("Figure 14: avg service time, VLB shootdown, dispatch vs scale");
    row(&[
        "scale".into(),
        "serv(us)".into(),
        "shootdown(us)".into(),
        "dispatch(us)".into(),
    ]);

    let mut disp = Vec::new();
    for (name, machine) in &scales {
        // Service time: workload-driven at a fixed light per-machine load
        // with the default per-socket orchestrator groups.
        let rep = RunSpec::new(System::Jord, 0.2e6)
            .on(machine.clone())
            .requests(n.min(3000), 300)
            .run(&w);
        let serv = rep.service.mean().unwrap().as_us_f64();
        let shoot = shootdown_worst_us(machine);
        let d = dispatch_worst_us(machine);
        disp.push(d);
        row(&[
            (*name).into(),
            format!("{serv:.2}"),
            format!("{shoot:.3}"),
            format!("{d:.3}"),
        ]);
    }

    println!();
    println!(
        "check: worst-case dispatch at 2-socket = {:.1} us (paper: ~12 us); \
         16-core → 2-socket growth {:.0}x",
        disp.last().unwrap(),
        disp.last().unwrap() / disp.first().unwrap()
    );
    println!(
        "check: service time and shootdown grow sublinearly (ArgBufs span ~15 \
         cache blocks regardless of scale; shootdown waits only on the \
         furthest core)."
    );

    // The §6.3 mitigation: per-socket orchestrators with affinity
    // dispatch. Same worst-case scan, but the group is socket-local.
    header("§6.3 mitigation: dual-socket worst-case dispatch by group scope");
    row(&["group".into(), "executors".into(), "dispatch(us)".into()]);
    let whole = dispatch_worst_group_us(&MachineConfig::two_socket(), 255, false);
    let local = dispatch_worst_group_us(&MachineConfig::two_socket(), 127, true);
    row(&["machine-wide".into(), "255".into(), format!("{whole:.3}")]);
    row(&["per-socket".into(), "127".into(), format!("{local:.3}")]);
    println!();
    println!(
        "note: affinity-grouped orchestrators never cross the socket link on \
         the dispatch path, cutting worst-case dispatch by {:.0}x (§6.3: load \
         imbalance from multi-queue dispatch is negligible at this fan-out).",
        whole / local
    );
}

/// Like `dispatch_worst_us`, but the orchestrator scans only `group_size`
/// executors; `local_only` restricts them to the orchestrator's socket.
fn dispatch_worst_group_us(
    machine_cfg: &MachineConfig,
    group_size: usize,
    local_only: bool,
) -> f64 {
    let mut m = Machine::new(machine_cfg.clone());
    let orch = CoreId(0);
    let base = 0x81_0000_0000u64;
    let per_socket = machine_cfg.cores / machine_cfg.sockets;
    let executors: Vec<usize> = (1..machine_cfg.cores)
        .filter(|&c| !local_only || c < per_socket)
        .take(group_size)
        .collect();
    let mlp = m.config().mlp as u64;
    let samples = 8;
    let mut total = SimDuration::ZERO;
    for _ in 0..samples {
        for (i, &e) in executors.iter().enumerate() {
            m.atomic_rmw(CoreId(e), base + i as u64 * 64);
        }
        let mut sum = SimDuration::ZERO;
        let mut worst = SimDuration::ZERO;
        for i in 0..executors.len() {
            let lat = m.read(orch, base + i as u64 * 64, 8);
            sum += lat;
            worst = worst.max(lat);
        }
        let scan = worst.max(sum / mlp) + m.work(executors.len() as f64);
        let push = m.write(orch, base + 3 * 64, 64);
        total += scan + push;
    }
    (total / samples).as_us_f64()
}
