//! Criterion host-side microbenchmarks of the VMA table data structures.
//!
//! Unlike the simulation harnesses (which report *simulated* nanoseconds),
//! these measure real wall-clock throughput of the software structures —
//! the plain list's O(1) closed-form slot lookup vs the B-tree's walk, free
//! list pops, and the VA codec. They demonstrate on the host what the
//! hardware model charges in simulation: the plain list does strictly less
//! work per operation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use jord_hw::types::{PdId, Perm};
use jord_vma::{BTreeTable, FreeLists, PlainListTable, SizeClass, VaCodec, VmaTable};

fn populated_plain(n: u32) -> (PlainListTable, Vec<u64>) {
    let codec = VaCodec::isca25();
    let mut t = PlainListTable::new(codec, 0x4000_0000);
    let mut acc = Vec::new();
    let sc = SizeClass::for_len(1024).unwrap();
    let vas = (0..n)
        .map(|i| {
            t.insert(sc, i, 1024, 0, &mut acc);
            t.set_perm(sc, i, PdId(1), Perm::RW, &mut acc);
            codec.base_of(sc, i).unwrap()
        })
        .collect();
    (t, vas)
}

fn populated_btree(n: u32) -> (BTreeTable, Vec<u64>) {
    let codec = VaCodec::isca25();
    let mut t = BTreeTable::new(codec, 0x8000_0000, 0x9000_0000);
    let mut acc = Vec::new();
    let sc = SizeClass::for_len(1024).unwrap();
    let vas = (0..n)
        .map(|i| {
            t.insert(sc, i, 1024, 0, &mut acc);
            t.set_perm(sc, i, PdId(1), Perm::RW, &mut acc);
            codec.base_of(sc, i).unwrap()
        })
        .collect();
    (t, vas)
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_lookup_1k_vmas");
    let (mut plain, vas) = populated_plain(1000);
    let mut acc = Vec::with_capacity(16);
    let mut i = 0usize;
    group.bench_function("plain_list", |b| {
        b.iter(|| {
            i = (i + 7) % vas.len();
            acc.clear();
            black_box(plain.lookup(black_box(vas[i] + 13), PdId(1), &mut acc))
        })
    });
    let (mut btree, vas) = populated_btree(1000);
    group.bench_function("btree", |b| {
        b.iter(|| {
            i = (i + 7) % vas.len();
            acc.clear();
            black_box(btree.lookup(black_box(vas[i] + 13), PdId(1), &mut acc))
        })
    });
    group.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_insert_remove");
    let sc = SizeClass::for_len(1024).unwrap();
    group.bench_function("plain_list", |b| {
        b.iter_batched_ref(
            || populated_plain(512).0,
            |t| {
                let mut acc = Vec::new();
                t.insert(sc, 1000, 1024, 0, &mut acc);
                t.remove(sc, 1000, &mut acc);
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("btree", |b| {
        b.iter_batched_ref(
            || populated_btree(512).0,
            |t| {
                let mut acc = Vec::new();
                t.insert(sc, 1000, 1024, 0, &mut acc);
                t.remove(sc, 1000, &mut acc);
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let codec = VaCodec::isca25();
    let sc = SizeClass::for_len(4096).unwrap();
    c.bench_function("va_codec_roundtrip", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) & 0xFFF;
            let va = codec.encode(sc, black_box(i), 17).unwrap();
            black_box(codec.decode(black_box(va)))
        })
    });
}

fn bench_free_lists(c: &mut Criterion) {
    c.bench_function("free_list_pop_push", |b| {
        let codec = VaCodec::isca25();
        let mut f = FreeLists::new(&codec, 0x7000_0000);
        let sc = SizeClass::MIN;
        b.iter(|| {
            let i = f.pop(black_box(sc)).unwrap();
            f.push(sc, black_box(i));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_lookup, bench_insert_remove, bench_codec, bench_free_lists
}
criterion_main!(benches);
