//! **Figure 12** — sensitivity of performance to the number of I-VLB and
//! D-VLB entries.
//!
//! Paper observations reproduced here: FaaS functions need very few VLB
//! entries — two I-VLB entries already cover the function's code plus
//! PrivLib (≥99 % of full throughput for Hipster), and four-to-eight D-VLB
//! entries suffice even for Media's ArgBuf-heavy functions, because the
//! plain-list walk behind a miss costs only ~2 ns.

use jord_bench::{header, requests_per_point, row, sweep};
use jord_hw::MachineConfig;
use jord_workloads::{runner::RunSpec, System, Workload, WorkloadKind};

fn vlb_sweep(kind: WorkloadKind, instr: bool, loads: &[f64], n: usize) {
    let w = Workload::build(kind);
    let which = if instr { "I-VLB" } else { "D-VLB" };
    header(&format!(
        "Figure 12: {} ({}) — p99 latency (us) vs load (MRPS) by entry count",
        w.name(),
        which
    ));
    let entries = [1usize, 2, 4, 16];
    let mut head = vec!["MRPS".to_string()];
    head.extend(entries.iter().map(|e| format!("{e}-entry")));
    row(&head);

    let curves: Vec<Vec<(f64, f64)>> = entries
        .iter()
        .map(|&e| {
            let mut machine = MachineConfig::isca25();
            if instr {
                machine.ivlb_entries = e;
            } else {
                machine.dvlb_entries = e;
            }
            loads
                .iter()
                .map(|&mrps| {
                    let rep = RunSpec::new(System::Jord, mrps * 1e6)
                        .on(machine.clone())
                        .requests(n, n / 10 + 100)
                        .run(&w);
                    (mrps, rep.p99().expect("completed").as_us_f64())
                })
                .collect()
        })
        .collect();

    for (i, &mrps) in loads.iter().enumerate() {
        let mut cells = vec![format!("{mrps:.2}")];
        for c in &curves {
            cells.push(format!("{:.1}", c[i].1));
        }
        row(&cells);
    }
}

fn main() {
    let n = requests_per_point();
    // Hipster stresses the I-VLB (per-invocation code-grant churn);
    // Media stresses the D-VLB (many live ArgBufs per function).
    vlb_sweep(
        WorkloadKind::Hipster,
        true,
        &[1.0, 4.0, 8.0, 10.0, 12.0, 14.0],
        n,
    );
    vlb_sweep(
        WorkloadKind::Media,
        false,
        &[0.25, 0.75, 1.25, 1.75, 2.25, 2.75],
        n,
    );

    // Quantified check: throughput at the paper's "sufficient" entry counts
    // vs the full 16-entry configuration.
    let w = Workload::build(WorkloadKind::Hipster);
    let probe = |ivlb: usize| {
        let mut machine = MachineConfig::isca25();
        machine.ivlb_entries = ivlb;
        let pts = {
            let loads = [10.0, 12.0];
            loads
                .iter()
                .map(|&mrps| {
                    let rep = RunSpec::new(System::Jord, mrps * 1e6)
                        .on(machine.clone())
                        .requests(n, n / 10 + 100)
                        .run(&w);
                    rep.p99().unwrap().as_us_f64()
                })
                .collect::<Vec<_>>()
        };
        pts
    };
    let two = probe(2);
    let full = probe(16);
    println!();
    println!(
        "check: Hipster p99 at 10/12 MRPS with 2-entry I-VLB = {:.1}/{:.1} us vs \
         16-entry = {:.1}/{:.1} us (paper: two entries reach 99% of throughput)",
        two[0], two[1], full[0], full[1]
    );
    let _ = sweep; // shared helper exercised by fig9; kept for parity
}
