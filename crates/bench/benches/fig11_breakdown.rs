//! **Figure 11** — service-time breakdown for the eight selected functions
//! (Table 3): execution vs isolation vs dispatch for Jord, execution vs
//! pipe overhead for NightCore.
//!
//! Paper observations reproduced here: Jord averages ~48 % less service
//! time than NightCore; except for ReadPage (>100 nested calls), Jord's
//! dispatch + isolation overheads are a small slice (~11 %) of service
//! time; NightCore's overhead exceeds its execution time in most cases,
//! reaching ~3× for RP. Also prints §6.2's per-request overhead numbers
//! (~360 ns/request; 8 %/4 %/3 %/~30 % of service time).

use jord_bench::{header, requests_per_point, row};
use jord_workloads::{runner::RunSpec, System, Workload, WorkloadKind};

fn main() {
    let n = requests_per_point();
    header("Figure 11: service-time breakdown of selected functions (us)");
    row(&[
        "fn".into(),
        "J.exec".into(),
        "J.isol".into(),
        "J.disp".into(),
        "J.service".into(),
        "NC.exec".into(),
        "NC.pipe".into(),
        "NC.service".into(),
        "J/NC".into(),
    ]);

    // Low-to-moderate load per workload.
    let rates = [1.0e6, 0.7e6, 0.3e6, 0.08e6];
    let mut ratios = Vec::new();
    let mut per_workload = Vec::new();

    for (wi, kind) in WorkloadKind::ALL.into_iter().enumerate() {
        let w = Workload::build(kind);
        let jord = RunSpec::new(System::Jord, rates[wi])
            .requests(n, n / 10 + 100)
            .run(&w);
        let nc = RunSpec::new(System::NightCore, rates[wi])
            .requests(n, n / 10 + 100)
            .run(&w);

        for (abbr, func) in &w.selected {
            let jf = &jord.functions[func];
            let nf = &nc.functions[func];
            let (je, ji, jd) = jf.mean_parts_ns();
            let js = jf.mean_service_ns();
            // NightCore has no isolation; its overhead is the pipe time,
            // accounted in `dispatch` (orchestrator side) plus the pipe
            // sends/recvs folded into exec. Approximate the pipe share as
            // service − pure compute, like the paper's instrumentation.
            let pure_exec_ns = w.registry.spec(*func).mean_compute_ns();
            let (ne, _, nd) = nf.mean_parts_ns();
            let ns = nf.mean_service_ns();
            let nc_pipe = (ne - pure_exec_ns).max(0.0) + nd;
            ratios.push(js / ns);
            row(&[
                (*abbr).into(),
                format!("{:.2}", je / 1e3),
                format!("{:.2}", ji / 1e3),
                format!("{:.2}", jd / 1e3),
                format!("{:.2}", js / 1e3),
                format!("{:.2}", pure_exec_ns / 1e3),
                format!("{:.2}", nc_pipe / 1e3),
                format!("{:.2}", ns / 1e3),
                format!("{:.2}", js / ns),
            ]);
        }
        per_workload.push((kind, jord));
    }

    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!();
    println!(
        "check: Jord service / NightCore service averaged over the 8 functions = {:.2} \
         (paper: Jord achieves 48% less service time, i.e. ratio ~0.52)",
        mean_ratio
    );

    header("§6.2: per-request dispatch+isolation overhead (Jord)");
    row(&[
        "workload".into(),
        "ovh/req(ns)".into(),
        "ovh share".into(),
        "paper share".into(),
    ]);
    let paper_share = ["8%", "4%", "3%", "~30%*"];
    for (i, (kind, rep)) in per_workload.iter().enumerate() {
        let ovh = rep.overhead_per_request_ns();
        // Share of total service time across all invocations.
        let total_service: f64 = rep.functions.values().map(|f| f.service.as_ns_f64()).sum();
        let total_ovh: f64 = rep
            .functions
            .values()
            .map(|f| f.isolation.as_ns_f64() + f.dispatch.as_ns_f64())
            .sum();
        row(&[
            kind.name().into(),
            format!("{ovh:.0}"),
            format!("{:.1}%", 100.0 * total_ovh / total_service),
            paper_share[i].into(),
        ]);
    }
    println!("(*paper: Media ~30% due to excessive nested invocations)");
}
