//! **Figure 13** — Jord with a B-tree VMA table (Jord_BT) vs the plain list.
//!
//! Paper observations reproduced here (Hotel): Jord_BT reaches ~60 % of
//! Jord's throughput under SLO; average function service time rises ~43 %
//! (driven by the ~20 ns vs ~2 ns VLB miss penalty); PrivLib spends ~167 %
//! more time managing VMAs (tree walks + rebalancing); yet Jord_BT still
//! beats NightCore.

use jord_bench::{best_under_slo, header, requests_per_point, row, sweep};
use jord_core::{RuntimeConfig, SystemVariant, WorkerServer};
use jord_hw::types::{CoreId, Perm};
use jord_hw::{Machine, MachineConfig};
use jord_privlib::{os, TableChoice};
use jord_workloads::{measure_slo, System, Workload, WorkloadKind};

/// Measures the VLB-miss walk penalty on a warm table of each kind.
fn walk_penalty(choice: TableChoice) -> f64 {
    let mut m = Machine::new(MachineConfig::isca25());
    let mut p = os::boot(&mut m, choice).expect("boot");
    let core = CoreId(1);
    let (pd, _) = p.cget(&mut m, core).unwrap();
    // Populate a few hundred VMAs so the B-tree has real depth.
    let mut vas = Vec::new();
    for _ in 0..300 {
        let (va, _) = p.mmap(&mut m, core, 1024, Perm::RW, pd).unwrap();
        vas.push(va);
    }
    // Touch them all once (warm the table memory), then measure re-walks
    // forced by VLB capacity misses.
    for &va in &vas {
        p.access(&mut m, core, pd, va, Perm::READ).unwrap();
    }
    let mut total = 0.0;
    let mut count = 0;
    for round in 0..8 {
        for &va in vas.iter().skip(round * 31).take(64) {
            let c = p.access(&mut m, core, pd, va, Perm::READ).unwrap();
            if !c.is_zero() {
                total += c.as_ns_f64();
                count += 1;
            }
        }
    }
    total / count.max(1) as f64
}

/// Total PrivLib VMA-management time for a fixed mmap/munmap/transfer mix.
fn vma_mgmt_time(choice: TableChoice) -> f64 {
    let mut m = Machine::new(MachineConfig::isca25());
    let mut p = os::boot(&mut m, choice).expect("boot");
    let core = CoreId(1);
    let (pd, _) = p.cget(&mut m, core).unwrap();
    let (pd2, _) = p.cget(&mut m, core).unwrap();
    let before = p.stats().vma_management_time();
    let mut live = Vec::new();
    for i in 0..2000u64 {
        let (va, _) = p
            .mmap(&mut m, core, 256 + (i % 7) * 512, Perm::RW, pd)
            .unwrap();
        p.pcopy(&mut m, core, va, pd, pd2, Perm::READ).unwrap();
        live.push(va);
        if live.len() > 40 {
            let va = live.remove((i % 37) as usize % live.len());
            p.munmap(&mut m, core, va, pd).unwrap();
        }
    }
    for va in live {
        p.munmap(&mut m, core, va, pd).unwrap();
    }
    (p.stats().vma_management_time() - before).as_us_f64()
}

fn main() {
    let n = requests_per_point();
    let w = Workload::build(WorkloadKind::Hotel);
    let slo = measure_slo(&w, 0.05e6, (n / 4).max(500))
        .expect("probe produced latencies")
        .as_us_f64();

    header(&format!(
        "Figure 13: Hotel — p99 latency (us) vs load (MRPS); SLO = {slo:.1} us"
    ));
    let loads = [0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    let jord = sweep(System::Jord, &w, &loads, n);
    let bt = sweep(System::JordBt, &w, &loads, n);
    row(&["MRPS".into(), "Jord".into(), "Jord_BT".into()]);
    for (i, &mrps) in loads.iter().enumerate() {
        row(&[
            format!("{mrps:.2}"),
            format!("{:.1}", jord[i].1),
            format!("{:.1}", bt[i].1),
        ]);
    }
    let best_jord = best_under_slo(&jord, slo);
    let best_bt = best_under_slo(&bt, slo);
    println!();
    println!(
        "check: throughput under SLO — Jord {best_jord:.1} MRPS, Jord_BT {best_bt:.1} MRPS \
         (ratio {:.2}; paper ~0.6)",
        best_bt / best_jord
    );

    // §6.2's two latency decompositions.
    let plain_walk = walk_penalty(TableChoice::PlainList);
    let btree_walk = walk_penalty(TableChoice::BTree);
    println!(
        "check: VLB miss penalty — plain list {plain_walk:.1} ns vs B-tree {btree_walk:.1} ns \
         (paper: 2 ns vs ~20 ns)"
    );
    let plain_mgmt = vma_mgmt_time(TableChoice::PlainList);
    let btree_mgmt = vma_mgmt_time(TableChoice::BTree);
    println!(
        "check: PrivLib VMA-management time for the same op mix — plain {plain_mgmt:.1} us vs \
         B-tree {btree_mgmt:.1} us (+{:.0}%; paper +167%)",
        100.0 * (btree_mgmt - plain_mgmt) / plain_mgmt
    );

    // Mean service-time growth under matched moderate load.
    let mk = |variant: SystemVariant| {
        let cfg = RuntimeConfig::variant_on(variant, MachineConfig::isca25());
        let mut s = WorkerServer::new(cfg, w.registry.clone()).unwrap();
        let mut gen = jord_workloads::LoadGen::new(&w, 42).unwrap();
        for (t, f, b) in gen.arrivals(3.0e6, n) {
            s.push_request(t, f, b);
        }
        s.set_warmup((n / 10) as u64);
        s.run().service.mean().unwrap().as_us_f64()
    };
    let svc_plain = mk(SystemVariant::Jord);
    let svc_bt = mk(SystemVariant::JordBt);
    println!(
        "check: mean function service time at 3 MRPS — Jord {svc_plain:.2} us vs Jord_BT \
         {svc_bt:.2} us (+{:.0}%; paper +43%)",
        100.0 * (svc_bt - svc_plain) / svc_plain
    );
}
