//! **Table 4** — VMA and PD operation latencies.
//!
//! Measures each PrivLib operation on warm state, on both the simulator
//! model (Table 2 machine) and the FPGA model (OpenXiangShan-like: same
//! SRAM latencies, lower instruction-execution IPC), and prints them next
//! to the paper's numbers.

use jord_hw::types::{CoreId, Perm};
use jord_hw::{Machine, MachineConfig};
use jord_privlib::{os, TableChoice};

struct OpRow {
    name: &'static str,
    paper_sim_ns: f64,
    paper_fpga_ns: f64,
    sim_ns: f64,
    fpga_ns: f64,
}

/// Measures one machine model; returns ns per op in Table 4 order.
fn measure(machine_cfg: MachineConfig) -> [f64; 7] {
    let mut m = Machine::new(machine_cfg);
    let mut p = os::boot(&mut m, TableChoice::PlainList).expect("boot");
    let core = CoreId(1);
    let (pd, _) = p.cget(&mut m, core).unwrap();

    // Warm every resource the steady state recycles.
    for _ in 0..4 {
        let (va, _) = p.mmap(&mut m, core, 1024, Perm::RW, pd).unwrap();
        p.munmap(&mut m, core, va, pd).unwrap();
        let (w, _) = p.cget(&mut m, core).unwrap();
        p.cput(&mut m, core, w).unwrap();
    }

    let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    const ITERS: usize = 64;

    // VMA lookup: VLB-miss walk with the VTE warm in L1D.
    let mut lookups = Vec::new();
    let (target, _) = p.mmap(&mut m, core, 1024, Perm::RW, pd).unwrap();
    p.access(&mut m, core, pd, target, Perm::READ).unwrap();
    let mut evictors = Vec::new();
    for _ in 0..m.config().dvlb_entries {
        let (va, _) = p.mmap(&mut m, core, 1024, Perm::RW, pd).unwrap();
        evictors.push(va);
    }
    for _ in 0..ITERS {
        for &va in &evictors {
            p.access(&mut m, core, pd, va, Perm::READ).unwrap();
        }
        let c = p.access(&mut m, core, pd, target, Perm::READ).unwrap();
        if !c.is_zero() {
            lookups.push(c.as_ns_f64());
        }
    }

    // Insertion / update / deletion on recycled slots.
    let mut ins = Vec::new();
    let mut upd = Vec::new();
    let mut del = Vec::new();
    for _ in 0..ITERS {
        let (va, c_ins) = p.mmap(&mut m, core, 1024, Perm::RW, pd).unwrap();
        ins.push(c_ins.as_ns_f64());
        let c_upd = p.mprotect(&mut m, core, va, Perm::READ, pd).unwrap();
        upd.push(c_upd.as_ns_f64());
        let c_del = p.munmap(&mut m, core, va, pd).unwrap();
        del.push(c_del.as_ns_f64());
    }

    // PD creation / deletion / switching on recycled ids.
    let mut cr = Vec::new();
    let mut de = Vec::new();
    let mut sw = Vec::new();
    for _ in 0..ITERS {
        let (p2, c_cr) = p.cget(&mut m, core).unwrap();
        cr.push(c_cr.as_ns_f64());
        let c_in = p.ccall(&mut m, core, p2).unwrap();
        let c_out = p.cexit(&mut m, core);
        sw.push(c_in.as_ns_f64());
        sw.push(c_out.as_ns_f64());
        let c_de = p.cput(&mut m, core, p2).unwrap();
        de.push(c_de.as_ns_f64());
    }

    [
        avg(&lookups),
        avg(&upd),
        avg(&ins),
        avg(&del),
        avg(&cr),
        avg(&de),
        avg(&sw),
    ]
}

fn main() {
    jord_bench::header("Table 4: VMA and PD operation latencies (ns)");
    let sim = measure(MachineConfig::isca25());
    let fpga = measure(MachineConfig::fpga());
    let rows = [
        ("VMA lookup", 2.0, 2.0),
        ("VMA update", 16.0, 33.0),
        ("VMA insertion", 16.0, 37.0),
        ("VMA deletion", 27.0, 39.0),
        ("PD creation", 11.0, 25.0),
        ("PD deletion", 14.0, 30.0),
        ("PD switching", 12.0, 22.0),
    ];
    jord_bench::row(&[
        "operation".into(),
        "sim(meas)".into(),
        "sim(paper)".into(),
        "fpga(meas)".into(),
        "fpga(paper)".into(),
    ]);
    for (i, (name, paper_sim, paper_fpga)) in rows.iter().enumerate() {
        let r = OpRow {
            name,
            paper_sim_ns: *paper_sim,
            paper_fpga_ns: *paper_fpga,
            sim_ns: sim[i],
            fpga_ns: fpga[i],
        };
        jord_bench::row(&[
            r.name.into(),
            format!("{:.1}", r.sim_ns),
            format!("{:.0}", r.paper_sim_ns),
            format!("{:.1}", r.fpga_ns),
            format!("{:.0}", r.paper_fpga_ns),
        ]);
    }
    println!();
    println!("note: FPGA model = identical SRAM/raw-hardware latencies, lower");
    println!(
        "instruction-execution IPC (ipc_factor {:.1}), per the Table 4 footnote.",
        MachineConfig::fpga().ipc_factor
    );
}
