//! Ablations of Jord's design choices beyond the paper's own figures.
//!
//! Three knobs the paper fixes (and we can sweep, because we built the
//! whole system):
//!
//! * **orchestrator count** — §3.3 says a worker server runs "one or more"
//!   orchestrators; this sweep shows where dispatch capacity saturates.
//! * **JBSQ bound** — the `k` in JBSQ(k): small bounds cut queueing
//!   variance but force orchestrator retries; large bounds behave like
//!   plain join-shortest-queue.
//! * **memory-level parallelism** — the scan cost model of §6.3 assumes
//!   overlapped queue-length loads; MLP=1 shows the un-overlapped worst
//!   case the paper's "even with memory-level parallelism" remark alludes
//!   to.

use jord_bench::{header, requests_per_point, row};
use jord_hw::types::CoreId;
use jord_hw::{Machine, MachineConfig};
use jord_sim::SimDuration;
use jord_workloads::{runner::RunSpec, System, Workload, WorkloadKind};

fn main() {
    let n = requests_per_point();

    // ---- orchestrator count ---------------------------------------------
    let w = Workload::build(WorkloadKind::Hipster);
    header("Ablation: orchestrator count (Hipster, p99 us by load)");
    let loads = [4.0, 8.0, 10.0, 12.0];
    let mut head = vec!["orchs".to_string()];
    head.extend(loads.iter().map(|l| format!("{l} MRPS")));
    row(&head);
    for orchs in [1usize, 2, 4, 8] {
        let mut cells = vec![format!("{orchs}")];
        for &mrps in &loads {
            let rep = RunSpec::new(System::Jord, mrps * 1e6)
                .orchestrators(orchs)
                .requests(n, n / 10 + 100)
                .run(&w);
            cells.push(format!("{:.1}", rep.p99().unwrap().as_us_f64()));
        }
        row(&cells);
    }
    println!("(too few orchestrators: dispatch saturates; the default is cores/8)");

    // ---- JBSQ bound -------------------------------------------------------
    let w = Workload::build(WorkloadKind::Hotel);
    header("Ablation: JBSQ bound k (Hotel, p99 us by load)");
    let loads = [2.0, 4.0, 5.0, 6.0];
    let mut head = vec!["k".to_string()];
    head.extend(loads.iter().map(|l| format!("{l} MRPS")));
    row(&head);
    for k in [1usize, 2, 4, 16] {
        let mut cells = vec![format!("{k}")];
        for &mrps in &loads {
            // Thread the bound through a custom runtime config.
            let warmup = n / 10 + 100;
            let mut cfg = jord_core::RuntimeConfig::variant_on(
                jord_core::SystemVariant::Jord,
                MachineConfig::isca25(),
            );
            cfg.queue_bound = k;
            let mut server = jord_core::WorkerServer::new(cfg, w.registry.clone()).unwrap();
            let mut gen = jord_workloads::LoadGen::new(&w, 42).unwrap();
            server.set_warmup(warmup as u64);
            for (t, f, b) in gen.arrivals(mrps * 1e6, n + warmup) {
                server.push_request(t, f, b);
            }
            let rep = server.run();
            cells.push(format!("{:.1}", rep.p99().unwrap().as_us_f64()));
        }
        row(&cells);
    }
    println!("(k=1 forces orchestrator retries; large k admits queue imbalance)");

    // ---- MLP --------------------------------------------------------------
    header("Ablation: scan MLP (worst-case 2-socket dispatch, us)");
    row(&["mlp".into(), "dispatch(us)".into()]);
    for mlp in [1usize, 4, 8, 16] {
        let mut cfg = MachineConfig::two_socket();
        cfg.mlp = mlp;
        let mut m = Machine::new(cfg);
        let base = 0x82_0000_0000u64;
        let n_exec = m.config().cores - 1;
        let mut total = SimDuration::ZERO;
        let samples = 8;
        for _ in 0..samples {
            for e in 0..n_exec {
                m.atomic_rmw(CoreId(e + 1), base + e as u64 * 64);
            }
            let mut sum = SimDuration::ZERO;
            let mut worst = SimDuration::ZERO;
            for e in 0..n_exec {
                let lat = m.read(CoreId(0), base + e as u64 * 64, 8);
                sum += lat;
                worst = worst.max(lat);
            }
            total += worst.max(sum / mlp as u64);
        }
        row(&[
            format!("{mlp}"),
            format!("{:.2}", (total / samples).as_us_f64()),
        ]);
    }
    println!("(the Table 2 core sustains ~8 outstanding scan loads)");
}
