//! Crash a Jord worker mid-run and watch the write-ahead journal put it
//! back together.
//!
//! Runs a seeded crash campaign over the Hotel workload: a journaled
//! crash-free baseline, then one executor, one orchestrator, and one
//! whole-worker crash under both in-flight semantics. The campaign runner
//! asserts the two recovery invariants at every point — nothing offered
//! is ever lost (`offered == completed + failed + sheds`), and
//! at-least-once recovery completes exactly what the crash-free run
//! completed — so just finishing is already the proof; the table shows
//! what each crash cost.
//!
//! ```sh
//! cargo run --release -p jord-workloads --example crash_recovery
//! ```

use jord_workloads::{CrashCampaign, Workload, WorkloadKind};

fn main() {
    let workload = Workload::build(WorkloadKind::Hotel);
    // A burst far beyond instantaneous capacity: queues stay deep at the
    // crash instant, so every scope provably interrupts live work.
    let campaign = CrashCampaign::new(4.0e6, 2_000).seed(42);

    println!(
        "Crash campaign: {} x {} requests at {:.1} MRPS, crash at t={:.0} us",
        workload.name(),
        campaign.requests,
        campaign.rate_rps / 1e6,
        campaign.crash_at_us,
    );
    println!();

    let report = campaign.run(&workload);
    print!("{}", report.table());
    println!();

    let base = report.baseline();
    println!(
        "baseline: {} completed, {} journal records, {} checkpoints",
        base.completed, base.journal_records, base.checkpoints
    );
    println!(
        "ledger balanced at every point: {}",
        if report.lossless() { "yes" } else { "NO" }
    );
    println!(
        "at-least-once parity with the crash-free run: {}",
        if report.at_least_once_parity() {
            "yes"
        } else {
            "NO"
        }
    );
}
