//! Kill one of four Jord workers mid-run and watch the cluster route
//! around it.
//!
//! Runs a seeded failover campaign over the Hotel workload on a
//! four-worker cluster: a kill-free baseline, the kill of worker 1 under
//! both crash semantics, a heartbeat blackout (the failure detector's
//! false-positive path), and the kill again with hedged dispatch on. The
//! campaign runner asserts the cluster invariants at every point —
//! `offered == completed + failed + shed` with nothing unaccounted,
//! at-least-once parity with the kill-free run, detection latency within
//! the phi-accrual confirm bound, and blackout readmission without a
//! single failed request — so just finishing is already the proof; the
//! table shows what each incident cost.
//!
//! ```sh
//! cargo run --release -p jord-workloads --example cluster_failover
//! ```

use jord_workloads::{FailoverCampaign, Workload, WorkloadKind};

fn main() {
    let workload = Workload::build(WorkloadKind::Hotel);
    // A burst far beyond four workers' instantaneous capacity: queues
    // stay deep at the kill instant, so failover provably moves stranded
    // work and misrouted requests sit long enough to trip the hedge.
    let campaign = FailoverCampaign::new(4.0e6, 2_000).seed(42);

    println!(
        "Failover campaign: {} x {} requests at {:.1} MRPS over {} workers, \
         kill worker {} at t={:.0} us",
        workload.name(),
        campaign.requests,
        campaign.rate_rps / 1e6,
        campaign.workers,
        campaign.victim,
        campaign.kill_at_us,
    );
    println!();

    let report = campaign.run(&workload);
    print!("{}", report.table());
    println!();

    let kill = &report.points[1];
    let hedged = report.points.last().unwrap();
    println!(
        "detection: kill -> eviction in {:.3} us (configured bound {:.3} us)",
        kill.detection_us, kill.confirm_bound_us
    );
    println!(
        "hedging the kill: worst latency {:.3} us -> {:.3} us, p99 {:.3} -> {:.3} \
         ({} hedges, {} won the race)",
        kill.max_us, hedged.max_us, kill.p99_us, hedged.p99_us, hedged.hedges, hedged.hedge_wins
    );
    println!(
        "ledger balanced at every point: {}",
        if report.lossless() { "yes" } else { "NO" }
    );
}
