//! SLO machinery (§5).
//!
//! "We use throughput under 99-percentile latency as the main performance
//! metric, with SLO set to 10× the minimal-load service time on Jord_NI,
//! as is common in the literature."

use jord_sim::SimDuration;

use crate::apps::Workload;
use crate::runner::{RunSpec, SweepPoint, System};

/// Measures the workload's SLO: 10× the mean request latency of Jord_NI
/// at minimal load (`probe_rps`, far below saturation).
pub fn measure_slo(workload: &Workload, probe_rps: f64, requests: usize) -> SimDuration {
    let rep = RunSpec::new(System::JordNi, probe_rps)
        .requests(requests, requests / 10 + 50)
        .run(workload);
    let base = rep.latency.mean().expect("probe run produced latencies");
    base * 10
}

/// Sweeps `system` over `loads` (requests/second), returning the measured
/// points and the highest offered load whose p99 met `slo`.
///
/// Points are returned for every load (the Figure 9 curves); the
/// throughput-under-SLO summary is the second element.
pub fn throughput_under_slo(
    system: System,
    workload: &Workload,
    loads: &[f64],
    slo: SimDuration,
    requests: usize,
) -> (Vec<SweepPoint>, f64) {
    let mut points = Vec::with_capacity(loads.len());
    let mut best = 0.0f64;
    for &rate in loads {
        let rep = RunSpec::new(system, rate)
            .requests(requests, requests / 10 + 100)
            .run(workload);
        let p99 = rep.p99().expect("sweep run produced latencies");
        let mean = rep.latency.mean().expect("non-empty");
        points.push(SweepPoint {
            rate_rps: rate,
            p99_us: p99.as_us_f64(),
            mean_us: mean.as_us_f64(),
        });
        if p99 <= slo {
            best = best.max(rate);
        }
    }
    (points, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::WorkloadKind;

    #[test]
    fn slo_is_ten_times_baseline() {
        let w = Workload::build(WorkloadKind::Hipster);
        let slo = measure_slo(&w, 0.05e6, 400);
        let us = slo.as_us_f64();
        // Hipster's minimal-load request latency is a few µs → SLO tens of µs.
        assert!(
            (5.0..200.0).contains(&us),
            "Hipster SLO should be tens of µs, got {us:.1}"
        );
    }

    #[test]
    fn sweep_reports_monotone_latency_growth_toward_saturation() {
        let w = Workload::build(WorkloadKind::Hotel);
        let slo = measure_slo(&w, 0.05e6, 300);
        let loads = [0.2e6, 2.0e6];
        let (points, best) = throughput_under_slo(System::Jord, &w, &loads, slo, 1_500);
        assert_eq!(points.len(), 2);
        assert!(
            points[1].p99_us >= points[0].p99_us,
            "heavier load must not lower p99"
        );
        assert!(best >= 0.2e6, "light load must meet SLO");
    }
}
