//! SLO machinery (§5).
//!
//! "We use throughput under 99-percentile latency as the main performance
//! metric, with SLO set to 10× the minimal-load service time on Jord_NI,
//! as is common in the literature."

use std::fmt;

use jord_sim::SimDuration;

use crate::apps::Workload;
use crate::runner::{RunSpec, SweepPoint, System};

/// Why an SLO measurement could not be taken.
#[derive(Debug, Clone, PartialEq)]
pub enum SloError {
    /// A run finished without recording a single latency sample — e.g. a
    /// probe so short every request fell inside the warm-up window, or a
    /// load every request of which was shed.
    NoLatencies {
        /// Which run produced nothing ("probe", "sweep").
        context: &'static str,
        /// The offered load of that run, requests/second.
        rate_rps: f64,
    },
}

impl fmt::Display for SloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SloError::NoLatencies { context, rate_rps } => write!(
                f,
                "{context} run at {rate_rps:.0} rps produced no latency samples; \
                 offer more measured requests"
            ),
        }
    }
}

impl std::error::Error for SloError {}

/// Measures the workload's SLO: 10× the mean request latency of Jord_NI
/// at minimal load (`probe_rps`, far below saturation).
///
/// # Errors
///
/// [`SloError::NoLatencies`] when the probe run completes nothing to
/// measure.
pub fn measure_slo(
    workload: &Workload,
    probe_rps: f64,
    requests: usize,
) -> Result<SimDuration, SloError> {
    let rep = RunSpec::new(System::JordNi, probe_rps)
        .requests(requests, requests / 10 + 50)
        .run(workload);
    let base = rep.latency.mean().ok_or(SloError::NoLatencies {
        context: "probe",
        rate_rps: probe_rps,
    })?;
    Ok(base * 10)
}

/// Sweeps `system` over `loads` (requests/second), returning the measured
/// points and the highest offered load whose p99 met `slo`.
///
/// Points are returned for every load (the Figure 9 curves); the
/// throughput-under-SLO summary is the second element.
///
/// # Errors
///
/// [`SloError::NoLatencies`] when a sweep run completes nothing to
/// measure.
pub fn throughput_under_slo(
    system: System,
    workload: &Workload,
    loads: &[f64],
    slo: SimDuration,
    requests: usize,
) -> Result<(Vec<SweepPoint>, f64), SloError> {
    let mut points = Vec::with_capacity(loads.len());
    let mut best = 0.0f64;
    for &rate in loads {
        let rep = RunSpec::new(system, rate)
            .requests(requests, requests / 10 + 100)
            .run(workload);
        let empty = || SloError::NoLatencies {
            context: "sweep",
            rate_rps: rate,
        };
        let p99 = rep.p99().ok_or_else(empty)?;
        let mean = rep.latency.mean().ok_or_else(empty)?;
        points.push(SweepPoint {
            rate_rps: rate,
            p99_us: p99.as_us_f64(),
            mean_us: mean.as_us_f64(),
        });
        if p99 <= slo {
            best = best.max(rate);
        }
    }
    Ok((points, best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::WorkloadKind;

    #[test]
    fn slo_is_ten_times_baseline() {
        let w = Workload::build(WorkloadKind::Hipster);
        let slo = measure_slo(&w, 0.05e6, 400).unwrap();
        let us = slo.as_us_f64();
        // Hipster's minimal-load request latency is a few µs → SLO tens of µs.
        assert!(
            (5.0..200.0).contains(&us),
            "Hipster SLO should be tens of µs, got {us:.1}"
        );
    }

    #[test]
    fn sweep_reports_monotone_latency_growth_toward_saturation() {
        let w = Workload::build(WorkloadKind::Hotel);
        let slo = measure_slo(&w, 0.05e6, 300).unwrap();
        let loads = [0.2e6, 2.0e6];
        let (points, best) = throughput_under_slo(System::Jord, &w, &loads, slo, 1_500).unwrap();
        assert_eq!(points.len(), 2);
        assert!(
            points[1].p99_us >= points[0].p99_us,
            "heavier load must not lower p99"
        );
        assert!(best >= 0.2e6, "light load must meet SLO");
    }

    #[test]
    fn empty_probe_is_a_typed_error_not_a_panic() {
        let w = Workload::build(WorkloadKind::Hotel);
        // Zero measured requests: everything lands in the warm-up window,
        // so the probe has no samples to average.
        let err = measure_slo(&w, 0.05e6, 0).unwrap_err();
        assert!(
            matches!(
                err,
                SloError::NoLatencies {
                    context: "probe",
                    ..
                }
            ),
            "got {err:?}"
        );
        assert!(err.to_string().contains("no latency samples"));
    }
}
