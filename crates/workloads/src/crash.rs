//! Crash campaigns: seeded crash/recovery sweeps over a workload.
//!
//! The crash-recovery counterpart of the [`chaos`](crate::chaos) fault
//! sweeps: instead of raising a per-invocation fault rate, a campaign
//! kills a whole runtime component — an executor, an orchestrator, or the
//! entire worker — mid-run and checks that the write-ahead journal brings
//! the survivor back honestly. Two ledger invariants are asserted inside
//! the runner at every point:
//!
//! 1. **No request is ever lost**: `offered == completed + failed + sheds`
//!    holds across the crash boundary, whatever died.
//! 2. **At-least-once parity**: under [`CrashSemantics::AtLeastOnce`] the
//!    crashed run completes exactly as many requests as the crash-free
//!    baseline with the same seed — every interrupted request is
//!    re-admitted and eventually finishes.
//!
//! Each point re-runs the same seeded workload, so a campaign is exactly
//! reproducible; the baseline point runs with the journal on but no crash
//! (ledger-audit mode), so the table also shows what journaling alone
//! costs in record volume.

use jord_core::{
    CrashConfig, CrashSemantics, RecoveryPolicy, RuntimeConfig, SystemVariant, WorkerServer,
};
use jord_hw::{CrashPlan, CrashScope, MachineConfig};

use crate::apps::Workload;
use crate::loadgen::LoadGen;

/// One measured run of a crash campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPoint {
    /// What crashed: "none" for the baseline, else the scope label.
    pub scope: &'static str,
    /// In-flight semantics label ("at-least-once" / "at-most-once").
    pub semantics: &'static str,
    /// Measured external requests.
    pub offered: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests terminally failed.
    pub failed: u64,
    /// Requests shed at admission.
    pub sheds: u64,
    /// Injected crashes that fired (0 or 1).
    pub crashes: u64,
    /// Invocations killed by the crash.
    pub killed: u64,
    /// Interrupted requests re-admitted after recovery.
    pub readmitted: u64,
    /// Journal records replayed during recovery.
    pub replayed: u64,
    /// Checkpoints taken across the run.
    pub checkpoints: u64,
    /// Total journal records appended.
    pub journal_records: u64,
    /// FNV-1a hash of the run's full lifecycle-event stream (the event
    /// bus's golden trace). Equal hashes mean event-for-event identical
    /// runs, so reproducibility checks compare whole histories, not just
    /// aggregate counters.
    pub trace_hash: u64,
    /// Goodput: completed / offered.
    pub goodput: f64,
}

impl CrashPoint {
    /// True when the request ledger balances: nothing offered was lost.
    pub fn lossless(&self) -> bool {
        self.offered == self.completed + self.failed + self.sheds
    }
}

/// A crash-campaign recipe: one workload, one crash instant, a grid of
/// crash scopes × crash semantics, always compared against a crash-free
/// journaled baseline on the same seed.
#[derive(Debug, Clone)]
pub struct CrashCampaign {
    /// Jord variant under test.
    pub variant: SystemVariant,
    /// Hardware configuration.
    pub machine: MachineConfig,
    /// Offered load, requests/second.
    pub rate_rps: f64,
    /// Requests per point (no warm-up: parity is exact-count).
    pub requests: usize,
    /// Seed shared by the load generator and every server.
    pub seed: u64,
    /// Simulated crash instant, µs from run start.
    pub crash_at_us: f64,
    /// Components to kill, one point each per semantics.
    pub scopes: Vec<CrashScope>,
    /// In-flight semantics to sweep.
    pub semantics: Vec<CrashSemantics>,
    /// Recovery policy applied at every point.
    pub recovery: RecoveryPolicy,
    /// Journal checkpoint cadence (records per checkpoint).
    pub checkpoint_every: usize,
}

impl CrashCampaign {
    /// A default campaign: Jord on the Table 2 machine, crash at the
    /// middle of the arrival span, sweeping every scope under both
    /// semantics.
    pub fn new(rate_rps: f64, requests: usize) -> Self {
        let span_us = requests as f64 / rate_rps * 1e6;
        CrashCampaign {
            variant: SystemVariant::Jord,
            machine: MachineConfig::isca25(),
            rate_rps,
            requests,
            seed: 42,
            crash_at_us: span_us / 2.0,
            scopes: vec![
                CrashScope::Executor(0),
                CrashScope::Orchestrator(0),
                CrashScope::Worker,
            ],
            semantics: vec![CrashSemantics::AtLeastOnce, CrashSemantics::AtMostOnce],
            recovery: RecoveryPolicy {
                max_retries: 5,
                ..RecoveryPolicy::default()
            },
            checkpoint_every: 64,
        }
    }

    /// Overrides the crash instant.
    pub fn crash_at_us(mut self, at_us: f64) -> Self {
        self.crash_at_us = at_us;
        self
    }

    /// Overrides the scope ladder.
    pub fn scopes(mut self, scopes: Vec<CrashScope>) -> Self {
        self.scopes = scopes;
        self
    }

    /// Overrides the semantics ladder.
    pub fn semantics(mut self, semantics: Vec<CrashSemantics>) -> Self {
        self.semantics = semantics;
        self
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the campaign on `workload`: one journaled crash-free baseline,
    /// then one point per scope × semantics.
    ///
    /// # Panics
    ///
    /// Panics if any point loses a request
    /// (`offered != completed + failed + sheds`), leaks an invocation,
    /// VMA, or PD, fails to fire its planned crash, or — under
    /// at-least-once semantics — completes a different number of requests
    /// than the crash-free baseline.
    pub fn run(&self, workload: &Workload) -> CrashReport {
        let baseline = self.run_point(workload, CrashConfig::journal_only(), "none");
        let mut points = vec![baseline];
        for &scope in &self.scopes {
            for &semantics in &self.semantics {
                let plan = CrashPlan {
                    at_us: self.crash_at_us,
                    scope,
                };
                let cfg = CrashConfig::new(plan, semantics).checkpoint_every(self.checkpoint_every);
                let point = self.run_point(workload, cfg, scope.label());
                assert_eq!(
                    point.crashes, 1,
                    "{}/{}: the planned crash must fire mid-run",
                    point.scope, point.semantics
                );
                if semantics == CrashSemantics::AtLeastOnce {
                    assert_eq!(
                        point.completed, baseline.completed,
                        "{}: at-least-once recovery must complete exactly what \
                         the crash-free run completed",
                        point.scope
                    );
                }
                points.push(point);
            }
        }
        CrashReport { points }
    }

    fn run_point(
        &self,
        workload: &Workload,
        crash: CrashConfig,
        scope: &'static str,
    ) -> CrashPoint {
        let cfg = RuntimeConfig::variant_on(self.variant, self.machine.clone())
            .with_seed(self.seed)
            .with_recovery(self.recovery)
            .with_crash(crash);
        let mut server =
            WorkerServer::new(cfg, workload.registry.clone()).expect("valid crash config");
        let baseline_vmas = server.privlib().live_vmas();
        let baseline_pds = server.privlib().live_pds();
        let mut gen = LoadGen::new(workload, self.seed).expect("workload mix is sampleable");
        for (t, f, b) in gen.arrivals(self.rate_rps, self.requests) {
            server.push_request(t, f, b);
        }
        let rep = server.run();

        // Every run must have flowed through the lifecycle event bus.
        assert!(
            server.trace_len() > 0,
            "{scope}: the event bus published no lifecycle events"
        );

        // Ledger and containment invariants, at every point.
        assert!(
            rep.balanced(),
            "{scope}: requests lost across the crash boundary \
             (offered {} != completed {} + failed {} + sheds {})",
            rep.offered,
            rep.completed,
            rep.faults.failed,
            rep.faults.sheds,
        );
        assert_eq!(server.live_invocations(), 0, "{scope}: invocations leaked");
        assert_eq!(
            server.privlib().live_vmas(),
            baseline_vmas,
            "{scope}: VMAs leaked"
        );
        assert_eq!(
            server.privlib().live_pds(),
            baseline_pds,
            "{scope}: PDs leaked"
        );

        CrashPoint {
            scope,
            semantics: crash.semantics.label(),
            offered: rep.offered,
            completed: rep.completed,
            failed: rep.faults.failed,
            sheds: rep.faults.sheds,
            crashes: rep.crash.crashes,
            killed: rep.crash.killed,
            readmitted: rep.crash.readmitted,
            replayed: rep.crash.replayed,
            checkpoints: rep.crash.checkpoints,
            journal_records: rep.crash.journal_records,
            trace_hash: server.trace_hash(),
            goodput: rep.goodput(),
        }
    }
}

/// The outcome of a crash campaign: the crash-free journaled baseline
/// followed by one point per scope × semantics, in sweep order.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashReport {
    /// Points in sweep order; `points[0]` is the crash-free baseline.
    pub points: Vec<CrashPoint>,
}

impl CrashReport {
    /// The crash-free (journal-audit) baseline point.
    pub fn baseline(&self) -> &CrashPoint {
        &self.points[0]
    }

    /// True when every point's request ledger balances.
    pub fn lossless(&self) -> bool {
        self.points.iter().all(CrashPoint::lossless)
    }

    /// True when every at-least-once point completed exactly as many
    /// requests as the crash-free baseline.
    pub fn at_least_once_parity(&self) -> bool {
        let base = self.baseline().completed;
        self.points
            .iter()
            .filter(|p| p.semantics == CrashSemantics::AtLeastOnce.label())
            .all(|p| p.completed == base)
    }

    /// Formats the campaign as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::from(
            "scope         semantics        offered  completed   failed   killed  readmit  replayed  ckpts  records  goodput\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<13} {:<14} {:>9} {:>10} {:>8} {:>8} {:>8} {:>9} {:>6} {:>8}   {:.4}\n",
                p.scope,
                p.semantics,
                p.offered,
                p.completed,
                p.failed,
                p.killed,
                p.readmitted,
                p.replayed,
                p.checkpoints,
                p.journal_records,
                p.goodput,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::WorkloadKind;

    fn quick_campaign() -> CrashCampaign {
        // A burst well beyond instantaneous capacity keeps queues deep at
        // the crash instant, so every scope provably kills live work.
        CrashCampaign::new(4.0e6, 1_500)
    }

    #[test]
    fn campaign_survives_every_scope_and_balances_the_ledger() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_campaign().run(&w);
        // 1 baseline + 3 scopes x 2 semantics.
        assert_eq!(rep.points.len(), 7);
        assert!(rep.lossless());
        assert!(rep.at_least_once_parity());
        assert_eq!(rep.baseline().crashes, 0);
        assert!(rep.baseline().journal_records > 0);
        // The worker crash must interrupt real work and replay the journal.
        let worker = rep
            .points
            .iter()
            .find(|p| p.scope == "worker" && p.semantics == "at-least-once")
            .expect("worker point present");
        assert!(worker.killed > 0, "mid-burst worker crash kills work");
        assert!(worker.readmitted > 0);
        assert!(worker.replayed > 0);
    }

    #[test]
    fn at_most_once_fails_interrupted_requests() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_campaign()
            .scopes(vec![CrashScope::Worker])
            .semantics(vec![CrashSemantics::AtMostOnce])
            .run(&w);
        let point = rep.points.last().unwrap();
        assert!(
            point.failed > 0,
            "interrupted requests must surface as failed"
        );
        assert!(point.completed < rep.baseline().completed);
        assert!(rep.lossless());
    }

    #[test]
    fn campaigns_are_reproducible() {
        let w = Workload::build(WorkloadKind::Hotel);
        let a = quick_campaign().run(&w);
        let b = quick_campaign().run(&w);
        assert_eq!(a, b, "same seed must reproduce the whole campaign");
    }

    #[test]
    fn table_lists_every_point() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_campaign().scopes(vec![CrashScope::Worker]).run(&w);
        let table = rep.table();
        assert_eq!(table.lines().count(), 1 + rep.points.len());
        assert!(table.contains("readmit"));
        assert!(table.contains("at-most-once"));
    }
}
