//! Storage chaos campaigns: seeded durable-journal fault sweeps.
//!
//! The [`crash`](crate::crash) campaigns trust the device: whatever the
//! journal appended is byte-perfect at recovery. A storage chaos campaign
//! drops that assumption and sweeps
//! [`StorageFaultKind`] × crash instant × [`CrashSemantics`], corrupting
//! the durable log (or the newest checkpoint image) between the crash and
//! the restart, and asserting the recovery ladder lands on the rung the
//! injected fault deserves:
//!
//! | fault               | expected rung(s)                                  |
//! |---------------------|---------------------------------------------------|
//! | none (control)      | exact-replay                                      |
//! | torn-tail           | torn-tail                                         |
//! | bit-flip            | quarantine / checkpoint-fallback / pristine-reboot|
//! | dropped-write       | quarantine / checkpoint-fallback / pristine-reboot|
//! | duplicated-frame    | exact-replay (dup dropped) / checkpoint-fallback / pristine-reboot |
//! | truncated-checkpoint| checkpoint-fallback                               |
//!
//! The interior faults (bit flip, dropped write, duplicated frame) land on
//! different rungs depending on where the strike falls relative to the
//! newest checkpoint's sealed prefix — before it the seal itself fails and
//! recovery falls back a checkpoint generation; after it the frame scan
//! catches the damage and quarantines the suffix. Both are legitimate, so
//! the campaign asserts membership in the kind's allowed set rather than a
//! single rung.
//!
//! Invariants asserted at every point:
//!
//! 1. **Ledger balance**: `offered == completed + failed + sheds` however
//!    the log was mangled — corruption may lose *records*, never
//!    *requests* from the books.
//! 2. **At-least-once never fails a request**: under
//!    [`CrashSemantics::AtLeastOnce`] every interrupted request — proven
//!    or demoted — is re-admitted, so `failed == 0` at every fault point.
//! 3. **Fault-free recovery is exact**: the control point (crash armed,
//!    storage pristine) takes the exact-replay rung and matches the
//!    crash-free baseline's completions; re-running any point reproduces
//!    its whole lifecycle trace hash.
//! 4. **Cluster re-derivation**: a cluster whose killed worker recovers
//!    through *any* rung — pristine reboot included — still completes
//!    every request with [`jord_core::FailoverStats::lost`]` == 0`: the
//!    dispatcher's notice-driven ledger re-derives whatever the worker's
//!    journal could not prove.

use jord_core::{
    ClusterConfig, ClusterDispatcher, CrashConfig, CrashSemantics, DurabilityStats, RecoveryPolicy,
    RecoveryRung, RuntimeConfig, SystemVariant, WorkerKill, WorkerServer,
};
use jord_hw::{CrashPlan, MachineConfig, StorageFaultKind, StorageFaultPlan};

use crate::apps::Workload;
use crate::loadgen::LoadGen;

/// The recovery rung a run's durability counters record, if exactly one
/// recovery happened. `None` when no recovery ran (baseline) or the
/// counters are ambiguous (multiple recoveries).
pub fn rung_taken(d: &DurabilityStats) -> Option<RecoveryRung> {
    let counts = [
        (RecoveryRung::ExactReplay, d.exact_replays),
        (RecoveryRung::TornTail, d.torn_tails),
        (RecoveryRung::Quarantine, d.quarantines),
        (RecoveryRung::CheckpointFallback, d.checkpoint_fallbacks),
        (RecoveryRung::PristineReboot, d.pristine_reboots),
    ];
    let total: u64 = counts.iter().map(|&(_, n)| n).sum();
    if total != 1 {
        return None;
    }
    counts.iter().find(|&&(_, n)| n == 1).map(|&(r, _)| r)
}

/// One measured run of a storage chaos campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoragePoint {
    /// Injected storage fault: "none" for the baseline and the control.
    pub fault: &'static str,
    /// In-flight semantics label ("at-least-once" / "at-most-once").
    pub semantics: &'static str,
    /// Crash instant as a fraction of the arrival span (0 = no crash).
    pub instant: f64,
    /// Recovery rung the restart landed on ("none" when nothing crashed).
    pub rung: &'static str,
    /// Measured external requests.
    pub offered: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests terminally failed.
    pub failed: u64,
    /// Requests shed at admission.
    pub sheds: u64,
    /// Injected crashes that fired (0 or 1).
    pub crashes: u64,
    /// Frames the recovery scan verified.
    pub frames_verified: u64,
    /// Frames quarantined as corrupt.
    pub frames_quarantined: u64,
    /// Bytes discarded off the end of the struck log.
    pub truncated_bytes: u64,
    /// Duplicate frames dropped by the scanner.
    pub duplicates_dropped: u64,
    /// Checkpoint seals that failed verification.
    pub seal_failures: u64,
    /// In-flight entries the lossy rung demoted (readmitted + failed).
    pub demoted: u64,
    /// Journal records replayed during recovery.
    pub replayed: u64,
    /// Checkpoints taken across the run.
    pub checkpoints: u64,
    /// FNV-1a hash of the run's full lifecycle-event stream.
    pub trace_hash: u64,
    /// Goodput: completed / offered.
    pub goodput: f64,
}

impl StoragePoint {
    /// True when the request ledger balances: nothing offered was lost.
    pub fn lossless(&self) -> bool {
        self.offered == self.completed + self.failed + self.sheds
    }
}

/// One cluster-level kill with a storage fault armed on the victim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterStoragePoint {
    /// Injected storage fault on the killed worker's journal.
    pub fault: &'static str,
    /// Recovery rung the victim's restart landed on.
    pub rung: &'static str,
    /// Requests pushed at the dispatcher.
    pub offered: u64,
    /// Requests completed (exactly once each).
    pub completed: u64,
    /// Requests terminally failed.
    pub failed: u64,
    /// Requests shed.
    pub shed: u64,
    /// Requests the dispatcher lost track of (must be 0).
    pub lost: u64,
    /// Fleet-merged frames verified during recovery scans.
    pub frames_verified: u64,
    /// Fleet-merged seal failures.
    pub seal_failures: u64,
}

/// A storage-chaos recipe: one workload, a grid of storage fault kinds ×
/// crash instants × crash semantics on a single worker, a crash-free
/// baseline, a storage-fault-free crash control, and a cluster kill per
/// fault kind.
#[derive(Debug, Clone)]
pub struct StorageChaosCampaign {
    /// Jord variant under test.
    pub variant: SystemVariant,
    /// Hardware configuration.
    pub machine: MachineConfig,
    /// Offered load, requests/second.
    pub rate_rps: f64,
    /// Requests per point (no warm-up: parity is exact-count).
    pub requests: usize,
    /// Seed shared by the load generator and every server.
    pub seed: u64,
    /// Crash instants as fractions of the arrival span.
    pub instants: Vec<f64>,
    /// Storage fault kinds to sweep.
    pub faults: Vec<StorageFaultKind>,
    /// In-flight semantics to sweep.
    pub semantics: Vec<CrashSemantics>,
    /// Recovery policy applied at every point.
    pub recovery: RecoveryPolicy,
    /// Journal checkpoint cadence (records per checkpoint). Small enough
    /// that a mid-run crash always has a previous checkpoint generation
    /// to fall back to.
    pub checkpoint_every: usize,
    /// Cluster size for the cluster sweep.
    pub workers: usize,
}

impl StorageChaosCampaign {
    /// A default campaign: Jord on the Table 2 machine, crashes at 35 %
    /// and 65 % of the arrival span, every storage fault kind under both
    /// semantics.
    pub fn new(rate_rps: f64, requests: usize) -> Self {
        StorageChaosCampaign {
            variant: SystemVariant::Jord,
            machine: MachineConfig::isca25(),
            rate_rps,
            requests,
            seed: 42,
            instants: vec![0.35, 0.65],
            faults: StorageFaultKind::ALL.to_vec(),
            semantics: vec![CrashSemantics::AtLeastOnce, CrashSemantics::AtMostOnce],
            recovery: RecoveryPolicy {
                max_retries: 5,
                ..RecoveryPolicy::default()
            },
            checkpoint_every: 64,
            workers: 4,
        }
    }

    /// Overrides the crash-instant fractions.
    pub fn instants(mut self, instants: Vec<f64>) -> Self {
        self.instants = instants;
        self
    }

    /// Overrides the fault-kind ladder.
    pub fn faults(mut self, faults: Vec<StorageFaultKind>) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the semantics ladder.
    pub fn semantics(mut self, semantics: Vec<CrashSemantics>) -> Self {
        self.semantics = semantics;
        self
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The simulated arrival span, µs.
    fn span_us(&self) -> f64 {
        self.requests as f64 / self.rate_rps * 1e6
    }

    /// The rungs fault `kind` may legitimately land on (see the module
    /// table). Interior faults depend on where the strike falls relative
    /// to the sealed checkpoint prefix, so their sets have three members.
    pub fn allowed_rungs(kind: StorageFaultKind) -> &'static [RecoveryRung] {
        match kind {
            StorageFaultKind::TornTail => &[RecoveryRung::TornTail],
            StorageFaultKind::BitFlip | StorageFaultKind::DroppedWrite => &[
                RecoveryRung::Quarantine,
                RecoveryRung::CheckpointFallback,
                RecoveryRung::PristineReboot,
            ],
            StorageFaultKind::DuplicatedFrame => &[
                RecoveryRung::ExactReplay,
                RecoveryRung::CheckpointFallback,
                RecoveryRung::PristineReboot,
            ],
            StorageFaultKind::TruncatedCheckpoint => &[RecoveryRung::CheckpointFallback],
        }
    }

    /// Runs the single-worker sweep: baseline, fault-free crash control,
    /// then one point per instant × fault kind × semantics.
    ///
    /// # Panics
    ///
    /// Panics if any point loses a request, fails to fire its planned
    /// crash, lands on a rung outside the fault kind's allowed set, fails
    /// a request under at-least-once semantics, or — at the control
    /// point — diverges from the crash-free baseline's completions.
    pub fn run(&self, workload: &Workload) -> StorageReport {
        let baseline = self.run_point(workload, CrashConfig::journal_only(), "none", 0.0);
        assert_eq!(baseline.crashes, 0);
        assert_eq!(baseline.rung, "none", "no crash, no recovery rung");

        // Control: the same crash with the device byte-perfect must climb
        // no further down the ladder than exact replay and reach parity
        // with the crash-free run.
        let at = self.instants.first().copied().unwrap_or(0.5);
        let control_cfg = CrashConfig::new(
            CrashPlan::worker_at(self.span_us() * at),
            CrashSemantics::AtLeastOnce,
        )
        .checkpoint_every(self.checkpoint_every);
        let control = self.run_point(workload, control_cfg, "none", at);
        assert_eq!(control.crashes, 1, "the control crash must fire");
        assert_eq!(
            control.rung,
            RecoveryRung::ExactReplay.label(),
            "a byte-perfect device must recover by exact replay"
        );
        assert_eq!(
            control.completed, baseline.completed,
            "fault-free recovery must complete exactly what the \
             crash-free run completed"
        );
        assert_eq!(control.failed, 0);

        let mut points = vec![baseline, control];
        for &frac in &self.instants {
            for &kind in &self.faults {
                for &semantics in &self.semantics {
                    let cfg =
                        CrashConfig::new(CrashPlan::worker_at(self.span_us() * frac), semantics)
                            .checkpoint_every(self.checkpoint_every)
                            .with_storage(StorageFaultPlan::new(kind));
                    let point = self.run_point(workload, cfg, kind.label(), frac);
                    self.audit_fault_point(kind, semantics, &point);
                    points.push(point);
                }
            }
        }

        // Quarantine probe: with an effectively infinite checkpoint
        // cadence the sealed prefix stays at the boot checkpoint, so
        // interior corruption lands past it and the frame scan — not the
        // seal — must catch it. Under the grid's tight cadence the seal
        // fails first, so this is the only way the quarantine rung is
        // reachable from a real fault.
        let probe_cfg = CrashConfig::new(
            CrashPlan::worker_at(self.span_us() * at),
            CrashSemantics::AtLeastOnce,
        )
        .checkpoint_every(usize::MAX)
        .with_storage(StorageFaultPlan::new(StorageFaultKind::BitFlip));
        let probe = self.run_point(workload, probe_cfg, "bit-flip", at);
        assert_eq!(probe.crashes, 1, "the probe crash must fire");
        assert!(
            probe.rung == RecoveryRung::Quarantine.label()
                || probe.rung == RecoveryRung::PristineReboot.label(),
            "quarantine probe: rung {} is not a corrupt-interior rung",
            probe.rung
        );
        assert_eq!(probe.failed, 0);
        points.push(probe);

        StorageReport { points }
    }

    /// The per-kind assertions every fault point must satisfy.
    fn audit_fault_point(
        &self,
        kind: StorageFaultKind,
        semantics: CrashSemantics,
        point: &StoragePoint,
    ) {
        let tag = format!("{}/{}@{}", point.fault, point.semantics, point.instant);
        assert_eq!(point.crashes, 1, "{tag}: the planned crash must fire");
        let allowed: Vec<&str> = Self::allowed_rungs(kind)
            .iter()
            .map(|r| r.label())
            .collect();
        assert!(
            allowed.contains(&point.rung),
            "{tag}: rung {} outside the kind's allowed set {allowed:?}",
            point.rung
        );
        match kind {
            StorageFaultKind::TornTail => {
                assert!(point.truncated_bytes > 0, "{tag}: a tear discards bytes");
            }
            StorageFaultKind::BitFlip => {
                assert!(
                    point.frames_quarantined + point.seal_failures > 0,
                    "{tag}: a flipped bit must be caught by scan or seal"
                );
            }
            StorageFaultKind::DroppedWrite => {
                assert!(
                    point.truncated_bytes > 0 || point.seal_failures > 0,
                    "{tag}: a dropped write must break the sequence or the seal"
                );
            }
            StorageFaultKind::DuplicatedFrame => {
                assert!(
                    point.duplicates_dropped > 0,
                    "{tag}: the scanner must drop the replayed frame"
                );
            }
            StorageFaultKind::TruncatedCheckpoint => {
                assert!(
                    point.seal_failures > 0,
                    "{tag}: a truncated checkpoint presents as a seal failure"
                );
            }
        }
        if semantics == CrashSemantics::AtLeastOnce {
            assert_eq!(
                point.failed, 0,
                "{tag}: at-least-once storage recovery must never fail a request"
            );
        }
    }

    /// One seeded single-worker run.
    fn run_point(
        &self,
        workload: &Workload,
        crash: CrashConfig,
        fault: &'static str,
        instant: f64,
    ) -> StoragePoint {
        let cfg = RuntimeConfig::variant_on(self.variant, self.machine.clone())
            .with_seed(self.seed)
            .with_recovery(self.recovery)
            .with_crash(crash);
        let mut server =
            WorkerServer::new(cfg, workload.registry.clone()).expect("valid storage-chaos config");
        let mut gen = LoadGen::new(workload, self.seed).expect("workload mix is sampleable");
        for (t, f, b) in gen.arrivals(self.rate_rps, self.requests) {
            server.push_request(t, f, b);
        }
        let rep = server.run();

        assert!(
            rep.balanced(),
            "{fault}/{}: requests lost to storage corruption \
             (offered {} != completed {} + failed {} + sheds {})",
            crash.semantics.label(),
            rep.offered,
            rep.completed,
            rep.faults.failed,
            rep.faults.sheds,
        );
        assert_eq!(
            server.live_invocations(),
            0,
            "{fault}: invocations leaked across recovery"
        );

        let d = rep.durability;
        StoragePoint {
            fault,
            semantics: crash.semantics.label(),
            instant,
            rung: rung_taken(&d).map_or("none", |r| r.label()),
            offered: rep.offered,
            completed: rep.completed,
            failed: rep.faults.failed,
            sheds: rep.faults.sheds,
            crashes: rep.crash.crashes,
            frames_verified: d.frames_verified,
            frames_quarantined: d.frames_quarantined,
            truncated_bytes: d.truncated_bytes,
            duplicates_dropped: d.duplicates_dropped,
            seal_failures: d.seal_failures,
            demoted: d.demoted_readmitted + d.demoted_failed,
            replayed: rep.crash.replayed,
            checkpoints: rep.crash.checkpoints,
            trace_hash: server.trace_hash(),
            goodput: rep.goodput(),
        }
    }

    /// Runs the cluster sweep: one worker kill per fault kind with the
    /// storage fault armed on the victim's journal, at-least-once
    /// semantics throughout.
    ///
    /// # Panics
    ///
    /// Panics if any point loses a request, fails one, or sheds one: the
    /// dispatcher's notice-driven ledger must re-derive whatever the
    /// victim's corrupted journal could not prove, whatever rung its
    /// restart landed on.
    pub fn run_cluster(&self, workload: &Workload) -> Vec<ClusterStoragePoint> {
        let mut points = Vec::new();
        for &kind in &self.faults {
            let template = RuntimeConfig::variant_on(self.variant, self.machine.clone())
                .with_seed(self.seed)
                .with_recovery(self.recovery);
            let mut cfg = ClusterConfig::new(self.workers, self.seed, template);
            cfg.kill = Some(WorkerKill {
                worker: 1,
                at_us: self.span_us() / 2.0,
            });
            cfg.storage = Some(StorageFaultPlan::new(kind));
            let mut cluster = ClusterDispatcher::new(cfg, workload.registry.clone())
                .expect("valid cluster storage config");
            let mut gen = LoadGen::new(workload, self.seed).expect("workload mix is sampleable");
            for (t, f, b) in gen.arrivals(self.rate_rps, self.requests) {
                cluster.push_request(t, f, b);
            }
            let rep = cluster.run();

            let tag = kind.label();
            assert_eq!(rep.failover.lost, 0, "{tag}: dispatcher lost requests");
            assert_eq!(
                rep.offered,
                rep.completed + rep.failed + rep.shed,
                "{tag}: cluster ledger out of balance"
            );
            assert_eq!(
                rep.completed, rep.offered,
                "{tag}: cross-worker retry must complete every request even \
                 when the victim's journal is unrecoverable"
            );
            let rung = rung_taken(&rep.durability);
            assert!(
                rung.is_some(),
                "{tag}: exactly one worker recovery must have run"
            );

            points.push(ClusterStoragePoint {
                fault: tag,
                rung: rung.map_or("none", |r| r.label()),
                offered: rep.offered,
                completed: rep.completed,
                failed: rep.failed,
                shed: rep.shed,
                lost: rep.failover.lost,
                frames_verified: rep.durability.frames_verified,
                seal_failures: rep.durability.seal_failures,
            });
        }
        points
    }
}

/// The outcome of a storage chaos campaign's single-worker sweep:
/// `points[0]` is the crash-free baseline, `points[1]` the fault-free
/// crash control, then one point per instant × fault × semantics, and
/// last the quarantine probe (interior corruption under an infinite
/// checkpoint cadence).
#[derive(Debug, Clone, PartialEq)]
pub struct StorageReport {
    /// Points in sweep order.
    pub points: Vec<StoragePoint>,
}

impl StorageReport {
    /// The crash-free journaled baseline.
    pub fn baseline(&self) -> &StoragePoint {
        &self.points[0]
    }

    /// The crash-armed, storage-pristine control point.
    pub fn control(&self) -> &StoragePoint {
        &self.points[1]
    }

    /// True when every point's request ledger balances.
    pub fn lossless(&self) -> bool {
        self.points.iter().all(StoragePoint::lossless)
    }

    /// Formats the campaign as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::from(
            "fault                 semantics      inst  rung                  offered  completed  failed  qframes  truncB  dups  seals  demoted  goodput\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<21} {:<14} {:>4.2} {:<21} {:>8} {:>10} {:>7} {:>8} {:>7} {:>5} {:>6} {:>8}   {:.4}\n",
                p.fault,
                p.semantics,
                p.instant,
                p.rung,
                p.offered,
                p.completed,
                p.failed,
                p.frames_quarantined,
                p.truncated_bytes,
                p.duplicates_dropped,
                p.seal_failures,
                p.demoted,
                p.goodput,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::WorkloadKind;

    fn quick_campaign() -> StorageChaosCampaign {
        // A burst well beyond instantaneous capacity keeps the journal
        // deep at the crash instant, so every strike has real frames to
        // mangle; one instant keeps the matrix affordable in CI.
        StorageChaosCampaign::new(4.0e6, 1_500).instants(vec![0.5])
    }

    #[test]
    fn campaign_survives_every_fault_kind_under_both_semantics() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_campaign().run(&w);
        // baseline + control + 5 kinds x 2 semantics + quarantine probe.
        assert_eq!(rep.points.len(), 13);
        assert!(rep.lossless());
        assert_eq!(rep.control().rung, "exact-replay");
        // Every fault kind must actually have exercised its rung: no
        // point on "none".
        for p in &rep.points[2..] {
            assert_ne!(p.rung, "none", "{}: recovery must have run", p.fault);
        }
        // With seed 42 the probe's flip lands past the boot checkpoint's
        // one-frame sealed prefix, so the scan quarantines it.
        assert_eq!(rep.points.last().unwrap().rung, "quarantine");
    }

    #[test]
    fn lossy_rungs_demote_unproven_work() {
        // Interior corruption with a torn checkpoint cadence small enough
        // that the lost suffix covers live work: the demotion path must
        // fire somewhere across the sweep (which point depends on where
        // the strike lands, so assert the aggregate).
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_campaign()
            .faults(vec![
                StorageFaultKind::BitFlip,
                StorageFaultKind::DroppedWrite,
            ])
            .run(&w);
        let lossy: u64 = rep.points[2..].iter().map(|p| p.demoted).sum();
        let quarantined: u64 = rep.points[2..]
            .iter()
            .map(|p| p.frames_quarantined + p.seal_failures)
            .sum();
        assert!(
            quarantined > 0,
            "interior corruption must be caught somewhere in the sweep"
        );
        // Demotion only fires when the lost suffix covered live entries;
        // with a mid-burst crash the books are deep, so expect at least
        // one demotion across the grid.
        assert!(
            lossy > 0,
            "a lossy recovery across deep books must demote something"
        );
    }

    #[test]
    fn campaigns_are_reproducible() {
        let w = Workload::build(WorkloadKind::Hotel);
        let spec = quick_campaign().faults(vec![StorageFaultKind::TornTail]);
        let a = spec.run(&w);
        let b = spec.run(&w);
        assert_eq!(a, b, "same seed must reproduce the whole campaign");
    }

    #[test]
    fn cluster_rederives_past_unrecoverable_journals() {
        let w = Workload::build(WorkloadKind::Hotel);
        let campaign = StorageChaosCampaign::new(4.0e6, 1_200).instants(vec![0.5]);
        let points = campaign.run_cluster(&w);
        assert_eq!(points.len(), StorageFaultKind::ALL.len());
        for p in &points {
            assert_eq!(p.lost, 0);
            assert_eq!(p.completed, p.offered);
            assert_ne!(p.rung, "none");
        }
    }

    #[test]
    fn table_lists_every_point() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_campaign()
            .faults(vec![StorageFaultKind::TruncatedCheckpoint])
            .semantics(vec![CrashSemantics::AtLeastOnce])
            .run(&w);
        let table = rep.table();
        assert_eq!(table.lines().count(), 1 + rep.points.len());
        assert!(table.contains("truncated-checkpoint"));
        assert!(table.contains("checkpoint-fallback"));
    }
}
