//! Failover campaigns: seeded cluster-level kill / partition / hedging
//! sweeps over a workload.
//!
//! The cluster counterpart of the [`crash`](crate::crash) campaigns: where
//! a crash campaign kills a component *inside* one worker and checks the
//! write-ahead journal, a failover campaign runs N whole
//! [`jord_core::WorkerServer`]s behind a [`ClusterDispatcher`] and scripts
//! fleet-level incidents — a worker kill detected by the phi-accrual
//! failure detector, a heartbeat blackout (the detector's false-positive
//! path), and hedged dispatch of slow-tail requests. Every point asserts
//! the cluster conservation invariant
//! `offered == completed + failed + shed` with
//! [`jord_core::FailoverStats::lost`]` == 0`, and the kill point under at-least-once
//! semantics additionally asserts:
//!
//! 1. **Exact parity**: the kill run completes exactly as many requests
//!    as the kill-free baseline on the same seed — nothing stranded on
//!    the dead worker is lost.
//! 2. **Bounded detection**: the measured kill → eviction latency stays
//!    below the configured confirm bound (one heartbeat interval plus the
//!    silence needed to reach the evict φ threshold).
//!
//! Per-worker seeds come from [`jord_sim::Rng::derive_seed`], so every
//! point is exactly reproducible and adding a worker never perturbs
//! another worker's schedule.

use jord_core::{
    ClusterConfig, ClusterDispatcher, ClusterReport, CrashSemantics, EngineConfig, HedgeConfig,
    PartitionPlan, RuntimeConfig, SystemVariant, WorkerKill,
};
use jord_hw::MachineConfig;

use crate::apps::Workload;
use crate::loadgen::LoadGen;

/// One measured run of a failover campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverPoint {
    /// What the point scripted ("baseline", "kill", "partition", "hedged").
    pub incident: &'static str,
    /// In-flight semantics label ("at-least-once" / "at-most-once").
    pub semantics: &'static str,
    /// Requests pushed at the dispatcher.
    pub offered: u64,
    /// Requests completed (exactly once each).
    pub completed: u64,
    /// Requests terminally failed.
    pub failed: u64,
    /// Requests shed.
    pub shed: u64,
    /// Workers evicted by the failure detector.
    pub evictions: u64,
    /// Evicted workers readmitted after probation.
    pub readmissions: u64,
    /// Stranded requests failed over to another worker.
    pub failovers: u64,
    /// Hedge copies dispatched.
    pub hedges: u64,
    /// Requests whose hedge copy answered first.
    pub hedge_wins: u64,
    /// Worst measured kill → eviction latency, µs (0 when nothing died).
    pub detection_us: f64,
    /// The configured detection bound at that eviction, µs.
    pub confirm_bound_us: f64,
    /// p99 end-to-end latency, µs.
    pub p99_us: f64,
    /// Worst end-to-end latency, µs. A kill strands well under 1 % of
    /// requests, so its cost hides below p99 — the max is where the
    /// detection window and the hedge's rescue of it actually show.
    pub max_us: f64,
    /// completed / offered.
    pub goodput: f64,
}

impl FailoverPoint {
    /// True when the request ledger balances: nothing offered was lost.
    pub fn lossless(&self) -> bool {
        self.offered == self.completed + self.failed + self.shed
    }
}

/// A failover-campaign recipe: one workload on a fixed-size cluster, a
/// kill-free baseline, a worker kill under both crash semantics, a
/// heartbeat blackout, and a hedged re-run of the kill (the with/without
/// tail-latency pair).
#[derive(Debug, Clone)]
pub struct FailoverCampaign {
    /// Jord variant every worker runs.
    pub variant: SystemVariant,
    /// Hardware configuration of every worker.
    pub machine: MachineConfig,
    /// Cluster size.
    pub workers: usize,
    /// Offered load at the dispatcher, requests/second.
    pub rate_rps: f64,
    /// Requests per point (no warm-up: parity is exact-count).
    pub requests: usize,
    /// Cluster seed (workers derive per-worker streams from it).
    pub seed: u64,
    /// When the scripted kill fires, µs from run start.
    pub kill_at_us: f64,
    /// Which worker the kill and the blackout target.
    pub victim: usize,
    /// Heartbeat blackout window for the partition point, µs.
    pub partition_us: (f64, f64),
    /// Hedge trigger for the hedged point: a request unanswered this
    /// long gets a second copy elsewhere, µs.
    pub hedge_after_us: f64,
    /// Cluster engine every point runs on: `None` for the sequential
    /// engine, `Some` for the conservative parallel engine (bit-identical
    /// results by contract — campaigns differential-test that).
    pub engine: Option<EngineConfig>,
}

impl FailoverCampaign {
    /// A default campaign: four Jord workers on the Table 2 machine, the
    /// kill at the middle of the arrival span, the blackout straddling
    /// the first half, both long enough for the default detector
    /// (5 µs heartbeats, evict at φ = 3 ≈ 34.5 µs of silence) to convict.
    pub fn new(rate_rps: f64, requests: usize) -> Self {
        let span_us = requests as f64 / rate_rps * 1e6;
        FailoverCampaign {
            variant: SystemVariant::Jord,
            machine: MachineConfig::isca25(),
            workers: 4,
            rate_rps,
            requests,
            seed: 42,
            kill_at_us: span_us / 2.0,
            victim: 1,
            partition_us: (span_us / 4.0, span_us / 4.0 + 60.0),
            // Well under the ~34.5 µs evict horizon: a hedge must rescue
            // a stranded request before the detector would.
            hedge_after_us: 10.0,
            engine: None,
        }
    }

    /// Runs every point on the conservative parallel engine.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Overrides the cluster size.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the kill instant.
    pub fn kill_at_us(mut self, at_us: f64) -> Self {
        self.kill_at_us = at_us;
        self
    }

    /// Runs the campaign on `workload`: a kill-free baseline, the worker
    /// kill under both semantics, the heartbeat blackout, and the hedged
    /// kill, in that order.
    ///
    /// # Panics
    ///
    /// Panics if any point loses a request, if at-least-once failover
    /// misses parity with the baseline, if detection latency exceeds the
    /// configured confirm bound, or if the blackout point fails requests
    /// (a partitioned-but-alive worker must be readmitted, not bled).
    pub fn run(&self, workload: &Workload) -> FailoverReport {
        let baseline = self.run_point(workload, "baseline", |_| {});
        assert_eq!(
            baseline.completed, baseline.offered,
            "a quiet cluster must complete everything"
        );

        let mut points = vec![baseline.clone()];
        for semantics in [CrashSemantics::AtLeastOnce, CrashSemantics::AtMostOnce] {
            let point = self.run_point(workload, "kill", |c| {
                c.semantics = semantics;
                c.kill = Some(WorkerKill {
                    worker: self.victim,
                    at_us: self.kill_at_us,
                });
            });
            assert!(point.evictions >= 1, "the detector must convict the kill");
            assert!(
                point.detection_us > 0.0 && point.detection_us <= point.confirm_bound_us,
                "kill/{}: detection took {} µs, bound is {} µs",
                point.semantics,
                point.detection_us,
                point.confirm_bound_us
            );
            match semantics {
                CrashSemantics::AtLeastOnce => {
                    assert_eq!(
                        point.completed, baseline.completed,
                        "at-least-once failover must complete exactly what the \
                         kill-free run completed"
                    );
                    assert!(point.failovers > 0, "stranded work must move workers");
                    assert_eq!(point.failed, 0);
                }
                CrashSemantics::AtMostOnce => {
                    assert!(
                        point.failed > 0,
                        "at-most-once must fail what the kill stranded"
                    );
                    assert_eq!(point.failovers, 0);
                }
            }
            points.push(point);
        }

        let partition = self.run_point(workload, "partition", |c| {
            c.partition = Some(PartitionPlan {
                worker: self.victim,
                from_us: self.partition_us.0,
                until_us: self.partition_us.1,
            });
        });
        assert!(
            partition.evictions >= 1 && partition.readmissions >= 1,
            "the blackout must evict and then readmit the cut-off worker"
        );
        assert_eq!(
            partition.completed, partition.offered,
            "a partitioned-but-alive worker must not cost any requests"
        );
        assert_eq!(partition.failovers, 0, "nothing was actually stranded");
        points.push(partition);

        // The same kill, with hedging on: requests routed to the dead
        // worker during the detection window sit unanswered past the
        // hedge trigger and get a second copy elsewhere — hedging covers
        // the detector's blind spot, and the point pairs with the plain
        // kill for a with/without-hedging tail comparison.
        let hedged = self.run_point(workload, "kill+hedge", |c| {
            c.kill = Some(WorkerKill {
                worker: self.victim,
                at_us: self.kill_at_us,
            });
            c.hedge = Some(HedgeConfig {
                after_us: self.hedge_after_us,
            });
        });
        assert_eq!(
            hedged.completed, baseline.completed,
            "hedged at-least-once failover must still reach parity"
        );
        assert!(
            hedged.hedges > 0,
            "requests stranded in the detection window must be hedged"
        );
        points.push(hedged);

        FailoverReport { points }
    }

    /// One seeded cluster run with `mutate` applied to the base config.
    pub fn run_point(
        &self,
        workload: &Workload,
        incident: &'static str,
        mutate: impl FnOnce(&mut ClusterConfig),
    ) -> FailoverPoint {
        let template =
            RuntimeConfig::variant_on(self.variant, self.machine.clone()).with_seed(self.seed);
        let mut cfg = ClusterConfig::new(self.workers, self.seed, template);
        cfg.engine = self.engine;
        mutate(&mut cfg);
        let semantics = cfg.semantics.label();
        let mut cluster =
            ClusterDispatcher::new(cfg, workload.registry.clone()).expect("valid cluster config");
        let mut gen = LoadGen::new(workload, self.seed).expect("workload mix is sampleable");
        for (t, f, b) in gen.arrivals(self.rate_rps, self.requests) {
            cluster.push_request(t, f, b);
        }
        let rep = cluster.run();
        Self::audit(incident, &rep);

        FailoverPoint {
            incident,
            semantics,
            offered: rep.offered,
            completed: rep.completed,
            failed: rep.failed,
            shed: rep.shed,
            evictions: rep.failover.evictions,
            readmissions: rep.failover.readmissions,
            failovers: rep.failover.failovers,
            hedges: rep.failover.hedges,
            hedge_wins: rep.failover.hedge_wins,
            detection_us: rep.failover.detection_ns / 1_000.0,
            confirm_bound_us: rep.failover.confirm_bound_ns / 1_000.0,
            p99_us: rep.p99().map_or(0.0, |d| d.as_ns_f64() / 1_000.0),
            max_us: rep.latency.max().map_or(0.0, |d| d.as_ns_f64() / 1_000.0),
            goodput: rep.goodput(),
        }
    }

    /// The invariants every point must satisfy, whatever the incident.
    fn audit(incident: &str, rep: &ClusterReport) {
        assert_eq!(
            rep.offered,
            rep.completed + rep.failed + rep.shed,
            "{incident}: requests lost across the worker boundary"
        );
        assert_eq!(rep.failover.lost, 0, "{incident}: unaccounted requests");
        let worker_total: u64 = rep.workers.iter().map(|w| w.completed).sum();
        assert_eq!(
            worker_total,
            rep.completed + rep.failover.duplicated,
            "{incident}: worker completions must be cluster completions \
             plus cancelled-too-late hedge/failover duplicates"
        );
    }
}

/// The outcome of a failover campaign, points in sweep order.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverReport {
    /// `points[0]` is the kill-free baseline, then kill ×2 semantics,
    /// partition, hedged.
    pub points: Vec<FailoverPoint>,
}

impl FailoverReport {
    /// The kill-free baseline point.
    pub fn baseline(&self) -> &FailoverPoint {
        &self.points[0]
    }

    /// True when every point's request ledger balances.
    pub fn lossless(&self) -> bool {
        self.points.iter().all(FailoverPoint::lossless)
    }

    /// Formats the campaign as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::from(
            "incident   semantics       offered  completed  failed  evict  readmit  failover  hedges   detect_us    p99_us    max_us  goodput\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<10} {:<14} {:>8} {:>10} {:>7} {:>6} {:>8} {:>9} {:>7} {:>11.3} {:>9.3} {:>9.3}   {:.4}\n",
                p.incident,
                p.semantics,
                p.offered,
                p.completed,
                p.failed,
                p.evictions,
                p.readmissions,
                p.failovers,
                p.hedges,
                p.detection_us,
                p.p99_us,
                p.max_us,
                p.goodput,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::WorkloadKind;

    fn quick_campaign() -> FailoverCampaign {
        // A burst well beyond four workers' instantaneous capacity keeps
        // queues deep when the kill fires, so failover provably moves
        // stranded work; the 500 µs arrival span comfortably outlasts the
        // blackout window so readmission happens while load remains.
        FailoverCampaign::new(4.0e6, 2_000)
    }

    #[test]
    fn campaign_survives_kill_partition_and_hedging() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_campaign().run(&w);
        // baseline + kill x2 semantics + partition + hedged.
        assert_eq!(rep.points.len(), 5);
        assert!(rep.lossless());
        assert_eq!(rep.baseline().evictions, 0);
        let hedged = rep.points.last().unwrap();
        assert_eq!(hedged.incident, "kill+hedge");
        assert!(hedged.hedge_wins <= hedged.hedges);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let w = Workload::build(WorkloadKind::Hotel);
        let a = quick_campaign().run(&w);
        let b = quick_campaign().run(&w);
        assert_eq!(a, b, "same seed must reproduce the whole campaign");
    }

    #[test]
    fn table_lists_every_point() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_campaign().run(&w);
        let table = rep.table();
        assert_eq!(table.lines().count(), 1 + rep.points.len());
        assert!(table.contains("baseline"));
        assert!(table.contains("partition"));
        assert!(table.contains("kill+hedge"));
    }
}
