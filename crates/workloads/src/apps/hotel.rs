//! DeathStarBench hotel reservation ported to Jord functions.
//!
//! Mid-weight leaves (geo index search, rate plans, profiles) behind two
//! entry points averaging ~3 nested calls. Figure 9: ≈7 MRPS under SLO →
//! ≈4.3 µs of CPU per request on 30 executors. Selected functions
//! (Table 3): **SearchNearby (SN)** and **MakeReservation (MR)**.

use jord_core::{FuncOp, FunctionRegistry, FunctionSpec};

use super::{EntryPoint, Workload, WorkloadKind};

/// Builds the Hotel workload.
pub fn build() -> Workload {
    let mut r = FunctionRegistry::new();

    let geo = r.register(
        FunctionSpec::new("GeoSearch")
            .op(FuncOp::ReadInput)
            .compute(750.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let rates = r.register(
        FunctionSpec::new("RatePlans")
            .op(FuncOp::ReadInput)
            .compute(650.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let profile = r.register(
        FunctionSpec::new("HotelProfile")
            .op(FuncOp::ReadInput)
            .compute(550.0, 0.5)
            .op(FuncOp::WriteOutput),
    );
    let reservation_db = r.register(
        FunctionSpec::new("ReservationStore")
            .op(FuncOp::ReadInput)
            .compute(800.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let user_auth = r.register(
        FunctionSpec::new("UserAuth")
            .op(FuncOp::ReadInput)
            .compute(350.0, 0.3)
            .op(FuncOp::WriteOutput),
    );

    // SearchNearby: geo index, then rates and profiles in parallel.
    let search_nearby = r.register(
        FunctionSpec::new("SearchNearby")
            .op(FuncOp::ReadInput)
            .compute(500.0, 0.4)
            .call(geo, 256)
            .call_async(rates, 256)
            .call_async(profile, 256)
            .op(FuncOp::WaitAll)
            .op(FuncOp::WriteOutput),
    );
    // MakeReservation: authenticate, write the reservation, refresh rates.
    let make_reservation = r.register(
        FunctionSpec::new("MakeReservation")
            .op(FuncOp::ReadInput)
            .compute(450.0, 0.4)
            .call(user_auth, 128)
            .call(reservation_db, 384)
            .call_async(rates, 128)
            .op(FuncOp::WaitAll)
            .op(FuncOp::WriteOutput),
    );

    Workload {
        kind: WorkloadKind::Hotel,
        registry: r,
        entries: vec![
            EntryPoint {
                func: search_nearby,
                name: "SearchNearby",
                weight: 0.70,
                arg_bytes: 512,
            },
            EntryPoint {
                func: make_reservation,
                name: "MakeReservation",
                weight: 0.30,
                arg_bytes: 512,
            },
        ],
        selected: vec![("SN", search_nearby), ("MR", make_reservation)],
    }
}
