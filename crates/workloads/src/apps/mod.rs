//! The four evaluated applications, ported to Jord's function paradigm.

pub mod hipster;
pub mod hotel;
pub mod media;
pub mod social;

use jord_core::{FunctionId, FunctionRegistry};

/// The paper's target workloads (§5, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Google OnlineBoutique ("Hipster shop").
    Hipster,
    /// DeathStarBench hotel reservation.
    Hotel,
    /// DeathStarBench media service.
    Media,
    /// DeathStarBench social network.
    Social,
}

impl WorkloadKind {
    /// All four workloads, in the paper's figure order.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::Hipster,
        WorkloadKind::Hotel,
        WorkloadKind::Media,
        WorkloadKind::Social,
    ];

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Hipster => "Hipster",
            WorkloadKind::Hotel => "Hotel",
            WorkloadKind::Media => "Media",
            WorkloadKind::Social => "Social",
        }
    }
}

/// An externally invocable function with its traffic share.
#[derive(Debug, Clone)]
pub struct EntryPoint {
    /// The entry function.
    pub func: FunctionId,
    /// Human-readable name.
    pub name: &'static str,
    /// Relative weight in the request mix.
    pub weight: f64,
    /// External request payload bytes.
    pub arg_bytes: u64,
}

/// A deployed application: its function registry, entry-point mix, and the
/// Table 3 selected functions.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which application this is.
    pub kind: WorkloadKind,
    /// Every deployed function.
    pub registry: FunctionRegistry,
    /// External entry points with mix weights.
    pub entries: Vec<EntryPoint>,
    /// The Table 3 selected functions: (abbreviation, id).
    pub selected: Vec<(&'static str, FunctionId)>,
}

impl Workload {
    /// Builds one of the four applications.
    pub fn build(kind: WorkloadKind) -> Workload {
        match kind {
            WorkloadKind::Hipster => hipster::build(),
            WorkloadKind::Hotel => hotel::build(),
            WorkloadKind::Media => media::build(),
            WorkloadKind::Social => social::build(),
        }
    }

    /// The workload's name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Mean invocations (entry + transitive nested) per external request
    /// under the entry mix.
    pub fn mean_invocations_per_request(&self) -> f64 {
        let total_w: f64 = self.entries.iter().map(|e| e.weight).sum();
        self.entries
            .iter()
            .map(|e| e.weight / total_w * self.registry.invocation_fanout(e.func) as f64)
            .sum()
    }

    /// Looks up a Table 3 selected function by abbreviation.
    pub fn selected_fn(&self, abbr: &str) -> Option<FunctionId> {
        self.selected
            .iter()
            .find(|(a, _)| *a == abbr)
            .map(|(_, id)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_workloads_build() {
        for kind in WorkloadKind::ALL {
            let w = Workload::build(kind);
            assert!(!w.registry.is_empty(), "{} has functions", w.name());
            assert!(!w.entries.is_empty(), "{} has entries", w.name());
            assert_eq!(
                w.selected.len(),
                2,
                "{}: Table 3 selects two functions",
                w.name()
            );
            let total_w: f64 = w.entries.iter().map(|e| e.weight).sum();
            assert!(total_w > 0.0);
        }
    }

    #[test]
    fn nested_call_averages_match_the_paper() {
        // §6.1: "each function invokes an average of 12 nested functions
        // [in Media], compared to three in other workloads."
        let media = Workload::build(WorkloadKind::Media).mean_invocations_per_request() - 1.0;
        assert!(
            (9.0..18.0).contains(&media),
            "Media should average ~12 nested calls, got {media:.1}"
        );
        for kind in [
            WorkloadKind::Hipster,
            WorkloadKind::Hotel,
            WorkloadKind::Social,
        ] {
            let nested = Workload::build(kind).mean_invocations_per_request() - 1.0;
            // Social sits a bit above three on average because ComposePost's
            // timeline fan-out is itself wide; it must still be far from
            // Media's twelve.
            assert!(
                (1.5..8.0).contains(&nested),
                "{} should average a few nested calls, got {nested:.1}",
                kind.name()
            );
        }
    }

    #[test]
    fn media_readpage_issues_over_100_nested_calls() {
        // §6.2: "RP with excessive nested function invocations (more than 100)".
        let w = Workload::build(WorkloadKind::Media);
        let rp = w.selected_fn("RP").expect("RP selected");
        assert!(w.registry.invocation_fanout(rp) > 100);
    }

    #[test]
    fn selected_functions_match_table3() {
        let expect: [(WorkloadKind, [&str; 2]); 4] = [
            (WorkloadKind::Hipster, ["GC", "PO"]),
            (WorkloadKind::Hotel, ["SN", "MR"]),
            (WorkloadKind::Media, ["UU", "RP"]),
            (WorkloadKind::Social, ["F", "CP"]),
        ];
        for (kind, abbrs) in expect {
            let w = Workload::build(kind);
            for a in abbrs {
                assert!(w.selected_fn(a).is_some(), "{} missing {a}", w.name());
            }
        }
    }

    #[test]
    fn social_has_a_heavy_tail_function() {
        // Figure 10: Social's CDF tail reaches ~75 µs.
        let w = Workload::build(WorkloadKind::Social);
        let cp = w.selected_fn("CP").unwrap();
        let own = w.registry.spec(cp).mean_compute_ns();
        assert!(own > 30_000.0, "ComposePost must be tens of µs, got {own}");
    }
}
