//! Google OnlineBoutique ("Hipster shop") ported to Jord functions.
//!
//! The lightest of the four workloads: short leaf services (currency
//! conversion, catalog lookups, cart storage) composed by thin entry
//! functions averaging ~3 nested calls. The paper's Figure 9 shows Jord
//! sustaining ≈12 MRPS under SLO here, so per-request CPU is ≈2.5 µs on
//! 30 executors. Selected functions (Table 3): **GetCart (GC)** and
//! **PlaceOrder (PO)**.

use jord_core::{FuncOp, FunctionRegistry, FunctionSpec};

use super::{EntryPoint, Workload, WorkloadKind};

/// Builds the Hipster workload.
pub fn build() -> Workload {
    let mut r = FunctionRegistry::new();

    // ---- leaf services -------------------------------------------------
    let currency = r.register(
        FunctionSpec::new("CurrencyConvert")
            .op(FuncOp::ReadInput)
            .compute(200.0, 0.3)
            .op(FuncOp::WriteOutput),
    );
    let cart_store = r.register(
        FunctionSpec::new("CartStore")
            .op(FuncOp::ReadInput)
            .compute(370.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let catalog = r.register(
        FunctionSpec::new("ProductCatalog")
            .op(FuncOp::ReadInput)
            .compute(250.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let shipping = r.register(
        FunctionSpec::new("ShippingQuote")
            .op(FuncOp::ReadInput)
            .compute(270.0, 0.3)
            .op(FuncOp::WriteOutput),
    );
    let payment = r.register(
        FunctionSpec::new("PaymentCharge")
            .op(FuncOp::ReadInput)
            .compute(300.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let email = r.register(
        FunctionSpec::new("EmailConfirmation")
            .op(FuncOp::ReadInput)
            .compute(300.0, 0.5)
            .op(FuncOp::WriteOutput),
    );

    // ---- entry functions ------------------------------------------------
    // GetCart: fetch the cart, convert prices.
    let get_cart = r.register(
        FunctionSpec::new("GetCart")
            .op(FuncOp::ReadInput)
            .compute(330.0, 0.4)
            .call(cart_store, 256)
            .call(currency, 128)
            .op(FuncOp::WriteOutput),
    );
    // ListProducts: catalog + currency.
    let list_products = r.register(
        FunctionSpec::new("ListProducts")
            .op(FuncOp::ReadInput)
            .compute(280.0, 0.4)
            .call(catalog, 256)
            .call(currency, 128)
            .op(FuncOp::WriteOutput),
    );
    // PlaceOrder: the checkout flow — cart, payment, shipping in parallel,
    // then an async confirmation email.
    let place_order = r.register(
        FunctionSpec::new("PlaceOrder")
            .op(FuncOp::ReadInput)
            .compute(520.0, 0.4)
            .call(cart_store, 256)
            .call_async(payment, 256)
            .call_async(shipping, 128)
            .op(FuncOp::WaitAll)
            .call_async(email, 128)
            .op(FuncOp::WaitAll)
            .op(FuncOp::WriteOutput),
    );

    Workload {
        kind: WorkloadKind::Hipster,
        registry: r,
        entries: vec![
            EntryPoint {
                func: get_cart,
                name: "GetCart",
                weight: 0.50,
                arg_bytes: 512,
            },
            EntryPoint {
                func: list_products,
                name: "ListProducts",
                weight: 0.35,
                arg_bytes: 448,
            },
            EntryPoint {
                func: place_order,
                name: "PlaceOrder",
                weight: 0.15,
                arg_bytes: 640,
            },
        ],
        selected: vec![("GC", get_cart), ("PO", place_order)],
    }
}
