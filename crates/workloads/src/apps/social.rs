//! DeathStarBench social network ported to Jord functions.
//!
//! The heavy-tailed workload: Follow is a light graph update, but
//! ComposePost does tens of microseconds of text processing (URL
//! shortening, user-mention extraction) before fanning out timeline
//! writes — it is the ~75 µs function visible in Figure 10's CDF tail,
//! and it caps throughput under SLO at ≈0.9 MRPS. Selected functions
//! (Table 3): **Follow (F)** and **ComposePost (CP)**.

use jord_core::{FuncOp, FunctionRegistry, FunctionSpec};

use super::{EntryPoint, Workload, WorkloadKind};

/// Home-timeline fan-out width for ComposePost.
const TIMELINE_FANOUT: usize = 6;

/// Builds the Social workload.
pub fn build() -> Workload {
    let mut r = FunctionRegistry::new();

    let social_graph = r.register(
        FunctionSpec::new("SocialGraphUpdate")
            .op(FuncOp::ReadInput)
            .compute(500.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let user_store = r.register(
        FunctionSpec::new("UserStore")
            .op(FuncOp::ReadInput)
            .compute(400.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let unique_id = r.register(
        FunctionSpec::new("UniqueId")
            .op(FuncOp::ReadInput)
            .compute(200.0, 0.3)
            .op(FuncOp::WriteOutput),
    );
    let media_store = r.register(
        FunctionSpec::new("MediaStore")
            .op(FuncOp::ReadInput)
            .compute(900.0, 0.6)
            .op(FuncOp::WriteOutput),
    );
    let post_store = r.register(
        FunctionSpec::new("PostStore")
            .op(FuncOp::ReadInput)
            .compute(700.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let user_timeline = r.register(
        FunctionSpec::new("UserTimelineWrite")
            .op(FuncOp::ReadInput)
            .compute(600.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let home_timeline = r.register(
        FunctionSpec::new("HomeTimelineWrite")
            .op(FuncOp::ReadInput)
            .compute(800.0, 0.5)
            .op(FuncOp::WriteOutput),
    );
    let read_timeline = r.register(
        FunctionSpec::new("ReadUserTimeline")
            .op(FuncOp::ReadInput)
            .compute(1_200.0, 0.5)
            .op(FuncOp::WriteOutput),
    );

    // Follow: update both directions of the social graph, refresh users.
    let follow = r.register(
        FunctionSpec::new("Follow")
            .op(FuncOp::ReadInput)
            .compute(450.0, 0.4)
            .call(social_graph, 256)
            .call_async(user_store, 128)
            .call_async(user_store, 128)
            .op(FuncOp::WaitAll)
            .op(FuncOp::WriteOutput),
    );

    // ReadHomeTimeline: a read-mostly entry.
    let read_home = r.register(
        FunctionSpec::new("ReadHomeTimeline")
            .op(FuncOp::ReadInput)
            .compute(800.0, 0.4)
            .call(read_timeline, 512)
            .call(post_store, 512)
            .op(FuncOp::WriteOutput),
    );

    // ComposePost: heavy text processing (~45 µs median: URL shortening,
    // user mentions, filtering — the Figure 10 tail), a scratch buffer,
    // then id/media/post writes and the timeline fan-out.
    let mut compose = FunctionSpec::new("ComposePost")
        .op(FuncOp::ReadInput)
        .op(FuncOp::MmapTemp { bytes: 16 << 10 })
        .compute(44_000.0, 0.15)
        .call(unique_id, 128)
        .call_async(media_store, 1024)
        .call(post_store, 1024)
        .op(FuncOp::WaitAll)
        .call(user_timeline, 256);
    for _ in 0..TIMELINE_FANOUT {
        compose = compose.call_async(home_timeline, 256);
    }
    let compose_post = r.register(
        compose
            .op(FuncOp::WaitAll)
            .op(FuncOp::MunmapTemp)
            .op(FuncOp::WriteOutput),
    );

    Workload {
        kind: WorkloadKind::Social,
        registry: r,
        entries: vec![
            EntryPoint {
                func: follow,
                name: "Follow",
                weight: 0.30,
                arg_bytes: 384,
            },
            EntryPoint {
                func: read_home,
                name: "ReadHomeTimeline",
                weight: 0.20,
                arg_bytes: 512,
            },
            EntryPoint {
                func: compose_post,
                name: "ComposePost",
                weight: 0.50,
                arg_bytes: 1024,
            },
        ],
        selected: vec![("F", follow), ("CP", compose_post)],
    }
}
