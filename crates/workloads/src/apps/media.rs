//! DeathStarBench media service ported to Jord functions.
//!
//! The nesting-heavy workload: "each function invokes an average of 12
//! nested functions, compared to three in other workloads" (§6.1), and
//! ReadPage issues *more than 100* nested invocations (§6.2). This is the
//! workload where Jord's per-invocation overheads compound (≈30 % of
//! service time) and where it reaches only ~70 % of Jord_NI. Selected
//! functions (Table 3): **UploadUniqueId (UU)** and **ReadPage (RP)**.

use jord_core::{FuncOp, FunctionRegistry, FunctionSpec};

use super::{EntryPoint, Workload, WorkloadKind};

/// Nested review reads a ReadPage issues (batched 10-way async).
const RP_REVIEWS: usize = 110;
/// Async batch width for ReadPage's review fan-out.
const RP_BATCH: usize = 10;

/// Builds the Media workload.
pub fn build() -> Workload {
    let mut r = FunctionRegistry::new();

    let unique_id = r.register(
        FunctionSpec::new("UniqueIdStore")
            .op(FuncOp::ReadInput)
            .compute(220.0, 0.3)
            .op(FuncOp::WriteOutput),
    );
    let text_store = r.register(
        FunctionSpec::new("TextStore")
            .op(FuncOp::ReadInput)
            .compute(300.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let movie_id = r.register(
        FunctionSpec::new("MovieIdLookup")
            .op(FuncOp::ReadInput)
            .compute(260.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let rating = r.register(
        FunctionSpec::new("RatingStore")
            .op(FuncOp::ReadInput)
            .compute(240.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let review_store = r.register(
        FunctionSpec::new("ReviewStore")
            .op(FuncOp::ReadInput)
            .compute(320.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let review_read = r.register(
        FunctionSpec::new("ReviewRead")
            .op(FuncOp::ReadInput)
            .compute(260.0, 0.5)
            .op(FuncOp::WriteOutput),
    );
    let movie_info = r.register(
        FunctionSpec::new("MovieInfo")
            .op(FuncOp::ReadInput)
            .compute(350.0, 0.4)
            .op(FuncOp::WriteOutput),
    );
    let plot = r.register(
        FunctionSpec::new("PlotRead")
            .op(FuncOp::ReadInput)
            .compute(300.0, 0.4)
            .op(FuncOp::WriteOutput),
    );

    // UploadUniqueId: the compose-review pipeline — id, text, movie id,
    // rating, review write, then two async index updates.
    let upload_unique_id = r.register(
        FunctionSpec::new("UploadUniqueId")
            .op(FuncOp::ReadInput)
            .compute(280.0, 0.4)
            .call(unique_id, 128)
            .call(text_store, 512)
            .call(movie_id, 128)
            .call_async(rating, 128)
            .call_async(review_store, 512)
            .op(FuncOp::WaitAll)
            .call_async(movie_info, 128)
            .call_async(plot, 128)
            .op(FuncOp::WaitAll)
            .op(FuncOp::WriteOutput),
    );

    // ReadPage: movie info + plot, then >100 review reads in async batches.
    let mut read_page = FunctionSpec::new("ReadPage")
        .op(FuncOp::ReadInput)
        .compute(400.0, 0.4)
        .call(movie_info, 256)
        .call(plot, 256);
    let mut remaining = RP_REVIEWS;
    while remaining > 0 {
        let batch = remaining.min(RP_BATCH);
        for _ in 0..batch {
            read_page = read_page.call_async(review_read, 128);
        }
        read_page = read_page.op(FuncOp::WaitAll);
        remaining -= batch;
    }
    let read_page = r.register(read_page.op(FuncOp::WriteOutput));

    Workload {
        kind: WorkloadKind::Media,
        registry: r,
        entries: vec![
            EntryPoint {
                func: upload_unique_id,
                name: "UploadUniqueId",
                weight: 0.95,
                arg_bytes: 640,
            },
            EntryPoint {
                func: read_page,
                name: "ReadPage",
                weight: 0.05,
                arg_bytes: 512,
            },
        ],
        selected: vec![("UU", upload_unique_id), ("RP", read_page)],
    }
}
