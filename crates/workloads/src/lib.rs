//! # jord-workloads — microservice workloads, load generation, and SLOs
//!
//! The paper evaluates Jord on three DeathStarBench applications —
//! **Social** network, **Media** service, **Hotel** reservation — and on
//! Google's OnlineBoutique (**Hipster**), all "ported to Jord by rewriting
//! them into functions following Jord's paradigm" (§5). This crate is that
//! port: each application is a set of [`jord_core::FunctionSpec`] DAGs with
//! compute-time distributions, nested-call structure, and ArgBuf sizes
//! calibrated to the characteristics the paper reports (≈3 nested calls
//! per request except Media's ≈12; ReadPage issuing >100; ≈15 cache blocks
//! of ArgBuf data per request; the Figure 10 service-time shapes, including
//! Social's ~75 µs ComposePost tail).
//!
//! The crate also provides:
//!
//! * [`LoadGen`] — a wrk2-style open-loop generator with per-workload
//!   entry-point mixes (§5) and, beyond the paper's Poisson process, the
//!   non-stationary [`ArrivalProcess`] shapes (diurnal sinusoid,
//!   flash-crowd step, Markov-modulated bursts) that drive autoscaling
//!   studies,
//! * [`runner`] — one-call drivers that assemble a server (any Jord
//!   variant or NightCore), inject a load, and return the measurement
//!   report,
//! * [`slo`] — the paper's SLO machinery: 10× the minimal-load service
//!   time on Jord_NI, and the "throughput under SLO" search used all over
//!   §6,
//! * [`chaos`] — fault-rate sweep campaigns that assert graceful
//!   degradation and zero resource leakage under deterministic fault
//!   injection,
//! * [`crash`] — crash/recovery campaigns that kill an executor, an
//!   orchestrator, or the whole worker mid-run and assert the write-ahead
//!   journal loses nothing (`offered == completed + failed + sheds`, and
//!   at-least-once parity with the crash-free baseline),
//! * [`failover`] — cluster campaigns that run N workers behind a
//!   [`jord_core::ClusterDispatcher`], kill or partition one mid-run, and
//!   assert the phi-accrual detector convicts within its configured bound
//!   while cross-worker failover keeps the ledger balanced,
//! * [`autoscale`] — overload-survival campaigns: flash-crowd, diurnal,
//!   and bursty traffic against the SLO-driven
//!   [`jord_core::ClusterAutoscaler`] and its brownout ladder, reporting
//!   cost-vs-SLO (worker-seconds bought vs load shed) and asserting zero
//!   lost requests even when a crash races a scale-down drain,
//! * [`soak`] — week-of-traffic soak campaigns against the memory
//!   governor: seven diurnal periods with warm-pool eviction, pressure
//!   ladders, and table compaction engaged, asserting bounded residency,
//!   no day-over-day growth, stable tails, balanced memory ledgers, and
//!   bit-identical seeded replay (including a crash landing mid-reclaim).
//!
//! # Example
//!
//! ```
//! use jord_workloads::{LoadGen, Workload, WorkloadKind};
//! use jord_core::{RuntimeConfig, SystemVariant, WorkerServer};
//!
//! let workload = Workload::build(WorkloadKind::Hotel);
//! let mut server = WorkerServer::new(RuntimeConfig::jord_32(), workload.registry.clone()).unwrap();
//! // 2000 requests at 1 MRPS.
//! let mut gen = LoadGen::new(&workload, 7).unwrap();
//! for (t, func, bytes) in gen.arrivals(1.0e6, 2000) {
//!     server.push_request(t, func, bytes);
//! }
//! let report = server.run();
//! assert_eq!(report.completed, 2000);
//! ```

pub mod apps;
pub mod autoscale;
pub mod chaos;
pub mod crash;
pub mod failover;
pub mod loadgen;
pub mod runner;
pub mod slo;
pub mod soak;
pub mod storage;

pub use apps::{EntryPoint, Workload, WorkloadKind};
pub use autoscale::{AutoscaleCampaign, AutoscalePoint, AutoscaleReport};
pub use chaos::{ChaosPoint, ChaosReport, ChaosSpec};
pub use crash::{CrashCampaign, CrashPoint, CrashReport};
pub use failover::{FailoverCampaign, FailoverPoint, FailoverReport};
pub use loadgen::{ArrivalProcess, LoadGen};
pub use runner::{run_system, SweepPoint, System};
pub use slo::{measure_slo, throughput_under_slo, SloError};
pub use soak::{SoakCampaign, SoakDay, SoakReport};
pub use storage::{ClusterStoragePoint, StorageChaosCampaign, StoragePoint, StorageReport};
