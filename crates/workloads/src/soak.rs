//! Soak campaigns: a week of diurnal traffic against the memory governor.
//!
//! Where an [`autoscale`](crate::autoscale) campaign asks whether the
//! fleet survives a crowd, a soak campaign asks whether it survives
//! *time*: seven diurnal periods of load against the
//! [`jord_core::MemoryConfig`] governor — warm-pool idle eviction,
//! pressure-driven degradation, VMA-table compaction — with the
//! [`jord_core::MemoryLedger`] audited at every seal. The campaign's
//! assertions are the long-haul residency contract:
//!
//! 1. **Conservation, always**: the request ledger balances
//!    (`offered == completed + failed + shed`, zero lost) *and* the fleet
//!    memory ledger balances (`mapped == resident + reclaimed`).
//! 2. **Bounded residency**: no evaluation window observes the fleet
//!    above `peak_workers x resident_budget_bytes`.
//! 3. **No monotonic growth**: the per-day peak of the final half of the
//!    week stays within a small tolerance of the first half's — a leak
//!    (a warm pool never evicted, a VMA table never compacted) shows up
//!    as day-over-day drift.
//! 4. **Stable tails**: the late-week mean windowed p99 stays within a
//!    bounded factor of the early week's.
//! 5. **Bit-identical replay**: the same seed reproduces the identical
//!    window sequence (now carrying resident bytes and pressure),
//!    fleet trace hash, and memory ledger.
//! 6. **Crash mid-reclaim**: a worker crash while reclamation is active
//!    (short idle deadlines, low compaction threshold) replays to the
//!    identical lifecycle trace, memory ledger, and live VMA/PD tables.

use jord_core::{
    AutoscalerConfig, ClusterConfig, ClusterDispatcher, ClusterReport, CrashConfig, MemoryConfig,
    MemoryLedger, RecoveryPolicy, RunReport, RuntimeConfig, SystemVariant, WindowRecord,
    WorkerServer,
};
use jord_hw::{CrashPlan, MachineConfig};
use jord_sim::SimDuration;

use crate::apps::Workload;
use crate::loadgen::{ArrivalProcess, LoadGen};

/// One simulated "day" of the soak, folded from the autoscaler windows
/// that fell inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoakDay {
    /// Day index, 0-based.
    pub day: usize,
    /// Evaluation windows inside the day.
    pub windows: usize,
    /// Requests routed across the day's windows.
    pub offered: u64,
    /// Requests shed across the day's windows.
    pub shed: u64,
    /// Largest fleet resident-byte sum any window observed.
    pub peak_resident_bytes: u64,
    /// Mean fleet resident-byte sum over the day's windows.
    pub mean_resident_bytes: f64,
    /// Worst windowed p99 inside the day (µs), if anything completed.
    pub p99_us: Option<f64>,
}

/// The outcome of a soak run: per-day residency series plus the sealed
/// fleet ledgers.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Day-by-day residency/latency series, in order.
    pub days: Vec<SoakDay>,
    /// Requests pushed at the dispatcher.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed.
    pub shed: u64,
    /// Fleet memory ledger (every worker's merged).
    pub memory: MemoryLedger,
    /// Largest simultaneous fleet size reached.
    pub peak_workers: u64,
    /// Largest fleet resident-byte sum any window observed.
    pub peak_resident_bytes: u64,
    /// Fleet trace hash (the replay witness).
    pub trace_hash: u64,
    /// End-to-end p99 over the whole week, µs.
    pub p99_us: f64,
}

impl SoakReport {
    /// Formats the per-day series as an aligned text table.
    pub fn table(&self) -> String {
        let mut out =
            String::from("day  windows  offered   shed  peak_resident  mean_resident    p99_us\n");
        for d in &self.days {
            out.push_str(&format!(
                "{:>3} {:>8} {:>8} {:>6} {:>14} {:>14.0} {:>9}\n",
                d.day,
                d.windows,
                d.offered,
                d.shed,
                d.peak_resident_bytes,
                d.mean_resident_bytes,
                d.p99_us.map_or("-".into(), |p| format!("{p:.3}")),
            ));
        }
        out
    }
}

/// A soak recipe: one workload, `days` diurnal periods of arrivals, the
/// autoscaler and memory governor both engaged, plus a crash-mid-reclaim
/// replay probe on a single worker.
#[derive(Debug, Clone)]
pub struct SoakCampaign {
    /// Jord variant every worker runs.
    pub variant: SystemVariant,
    /// Hardware configuration of every worker.
    pub machine: MachineConfig,
    /// Initial fleet size.
    pub workers: usize,
    /// Base offered load, requests/second; the diurnal sinusoid moves
    /// around it.
    pub rate_rps: f64,
    /// Requests across the whole week.
    pub requests: usize,
    /// Cluster seed.
    pub seed: u64,
    /// Diurnal periods packed into the arrival span.
    pub days: usize,
    /// Peak-to-mean swing of the diurnal sinusoid (0..1).
    pub amplitude: f64,
    /// Autoscaler tuning.
    pub autoscale: AutoscalerConfig,
    /// Per-worker admission queue bound.
    pub shed_bound: usize,
    /// Memory-governor tuning shared by every worker.
    pub memory: MemoryConfig,
    /// When the crash-mid-reclaim probe kills its worker, µs.
    pub crash_at_us: f64,
    /// Day-over-day growth tolerance for the no-leak assertion.
    pub growth_tolerance: f64,
    /// Late-vs-early tail-latency tolerance factor.
    pub tail_tolerance: f64,
}

impl SoakCampaign {
    /// A default week: two initial Jord workers on the Table 2 machine,
    /// seven diurnal periods, and a governor tuned so reclamation is
    /// actually exercised — warm PDs idle out during every trough
    /// (`pool_max_idle` shorter than a day) and tables compact under
    /// sustained churn.
    pub fn new(rate_rps: f64, requests: usize) -> Self {
        let span_us = requests as f64 / rate_rps * 1e6;
        let days = 7;
        let day_us = span_us / days as f64;
        SoakCampaign {
            variant: SystemVariant::Jord,
            machine: MachineConfig::isca25(),
            workers: 2,
            rate_rps,
            requests,
            seed: 42,
            days,
            amplitude: 0.8,
            autoscale: AutoscalerConfig {
                min_workers: 1,
                max_workers: 6,
                target_p99_us: Some(60.0),
                ..AutoscalerConfig::default()
            },
            shed_bound: 64,
            memory: MemoryConfig {
                // Tight enough that a worker's diurnal-peak working set
                // (~23 MiB under the DeathStarBench apps) crosses the
                // Elevated threshold (70% = 22 MiB) — the ladder must
                // actually be climbed, not just carried — while troughs
                // fall back to Normal.
                resident_budget_bytes: 30 << 20,
                // A trough must be long enough to idle-evict the pool
                // warmed at the preceding peak.
                pool_max_idle: SimDuration::from_us((day_us / 8.0) as u64),
                pool_max_per_function: 4,
                compact_dead_slots: 64,
                ..MemoryConfig::default()
            },
            crash_at_us: span_us * 0.4,
            growth_tolerance: 1.25,
            tail_tolerance: 2.0,
        }
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The week's arrival shape.
    pub fn arrival(&self) -> ArrivalProcess {
        let span_us = self.requests as f64 / self.rate_rps * 1e6;
        ArrivalProcess::Diurnal {
            period_us: span_us / self.days as f64,
            amplitude: self.amplitude,
        }
    }

    /// Runs the soak and asserts the long-haul residency contract.
    ///
    /// # Panics
    ///
    /// Panics if any ledger (request or memory) fails to balance, if a
    /// window observes the fleet over budget, if the late week's peak
    /// residency or tails drift past tolerance, if the governor never
    /// reclaimed anything (the soak would be vacuous), or if the seeded
    /// replay is not bit-identical.
    pub fn run(&self, workload: &Workload) -> SoakReport {
        let (rep, windows) = self.run_cluster(workload);
        let report = self.fold(&rep, &windows);

        assert_eq!(rep.failover.lost, 0, "soak: no request may vanish");
        assert_eq!(
            rep.offered,
            rep.completed + rep.failed + rep.shed,
            "soak: request ledger must balance"
        );
        assert!(
            rep.memory.balanced(),
            "soak: fleet memory ledger must balance (mapped {} != resident {} + reclaimed {})",
            rep.memory.mapped_bytes,
            rep.memory.resident_bytes,
            rep.memory.reclaimed_bytes
        );
        assert!(
            rep.memory.reclaimed_bytes > 0 && rep.memory.pool_evictions > 0,
            "soak: a week of diurnal troughs must actually reclaim memory \
             (otherwise the soak proves nothing)"
        );

        // Bounded residency: every window, not just the last.
        let budget = self.memory.resident_budget_bytes * rep.autoscale.peak_workers;
        assert!(
            report.peak_resident_bytes <= budget,
            "soak: fleet resident bytes ({}) exceeded {} workers x budget ({})",
            report.peak_resident_bytes,
            rep.autoscale.peak_workers,
            budget
        );

        // No monotonic growth: late-week peaks within tolerance of the
        // early week's, and the day-peak series must not strictly climb.
        let measured: Vec<&SoakDay> = report.days.iter().filter(|d| d.windows > 0).collect();
        if measured.len() >= 2 {
            let half = measured.len() / 2;
            let early = measured[..half]
                .iter()
                .map(|d| d.peak_resident_bytes)
                .max()
                .unwrap_or(0);
            let late = measured[half..]
                .iter()
                .map(|d| d.peak_resident_bytes)
                .max()
                .unwrap_or(0);
            assert!(
                (late as f64) <= (early as f64) * self.growth_tolerance,
                "soak: late-week peak residency ({late}) drifted past \
                 {:.2}x the early week's ({early}) — a reclamation leak",
                self.growth_tolerance
            );
            let strictly_climbing = measured
                .windows(2)
                .all(|w| w[1].peak_resident_bytes > w[0].peak_resident_bytes);
            assert!(
                !strictly_climbing,
                "soak: day-peak residency climbed every single day"
            );

            // Stable tails: late-week windowed p99 within tolerance.
            let mean_p99 = |days: &[&SoakDay]| {
                let ps: Vec<f64> = days.iter().filter_map(|d| d.p99_us).collect();
                if ps.is_empty() {
                    None
                } else {
                    Some(ps.iter().sum::<f64>() / ps.len() as f64)
                }
            };
            if let (Some(early_p99), Some(late_p99)) =
                (mean_p99(&measured[..half]), mean_p99(&measured[half..]))
            {
                assert!(
                    late_p99 <= early_p99 * self.tail_tolerance,
                    "soak: late-week p99 ({late_p99:.3} µs) drifted past \
                     {:.1}x the early week's ({early_p99:.3} µs)",
                    self.tail_tolerance
                );
            }
        }

        // Bit-identical replay: decisions, residency series, pressure
        // levels, trace hash, and the merged memory ledger.
        let (rep2, windows2) = self.run_cluster(workload);
        assert_eq!(windows, windows2, "soak: window sequences must replay");
        assert_eq!(
            rep.trace_hash, rep2.trace_hash,
            "soak: fleet traces must replay bit-identically"
        );
        assert_eq!(
            rep.memory, rep2.memory,
            "soak: fleet memory ledgers must replay bit-identically"
        );

        report
    }

    /// One seeded cluster run of the week, returning the report and its
    /// window sequence.
    pub fn run_cluster(&self, workload: &Workload) -> (ClusterReport, Vec<WindowRecord>) {
        // Sanitize-and-pool on: the warm pool, working-set records, and
        // idle eviction are the machinery this campaign soaks.
        let template = RuntimeConfig::variant_on(self.variant, self.machine.clone())
            .with_seed(self.seed)
            .with_sanitize(true)
            .with_recovery(RecoveryPolicy {
                shed_bound: Some(self.shed_bound),
                ..RecoveryPolicy::default()
            })
            .with_memory(self.memory);
        let mut cfg = ClusterConfig::new(self.workers, self.seed, template);
        cfg.autoscale = Some(self.autoscale);
        let mut cluster =
            ClusterDispatcher::new(cfg, workload.registry.clone()).expect("valid cluster config");
        let mut gen = LoadGen::new(workload, self.seed).expect("workload mix is sampleable");
        let process = self.arrival();
        for (t, f, b) in gen.arrivals_with(&process, self.rate_rps, self.requests) {
            cluster.push_request(t, f, b);
        }
        let rep = cluster.run();
        let windows = rep.windows.clone();
        (rep, windows)
    }

    /// The crash-mid-reclaim probe: one worker under the same governor
    /// tuning, killed while reclamation is active, run twice.
    ///
    /// # Panics
    ///
    /// Panics if the crash fails to fire, if either run's ledgers do not
    /// balance, or if the two runs differ in lifecycle trace, memory
    /// ledger, or the final live VMA/PD tables — replay must rebuild the
    /// *identical* address space.
    pub fn crash_replay(&self, workload: &Workload) -> RunReport {
        let run = || -> (RunReport, u64, (usize, usize)) {
            let cfg = RuntimeConfig::variant_on(self.variant, self.machine.clone())
                .with_seed(self.seed)
                .with_sanitize(true)
                .with_memory(MemoryConfig {
                    // Aggressive reclamation so the crash actually races
                    // pool eviction and table compaction.
                    pool_max_idle: SimDuration::from_us(200),
                    compact_dead_slots: 16,
                    ..self.memory
                })
                .with_crash(CrashConfig::new(
                    CrashPlan::worker_at(self.crash_at_us),
                    jord_core::CrashSemantics::AtLeastOnce,
                ));
            let mut server =
                WorkerServer::new(cfg, workload.registry.clone()).expect("valid soak crash config");
            let mut gen = LoadGen::new(workload, self.seed).expect("workload mix is sampleable");
            for (t, f, b) in gen.arrivals(self.rate_rps, self.requests) {
                server.push_request(t, f, b);
            }
            let rep = server.run();
            let hash = server.trace_hash();
            let tables = (server.privlib().live_vmas(), server.privlib().live_pds());
            (rep, hash, tables)
        };
        let (rep_a, hash_a, tables_a) = run();
        let (rep_b, hash_b, tables_b) = run();
        assert!(
            rep_a.crash.crashes >= 1,
            "crash-mid-reclaim: the planned crash must fire"
        );
        assert!(
            rep_a.memory.pool_evictions > 0,
            "crash-mid-reclaim: reclamation must be active around the crash"
        );
        assert!(rep_a.balanced(), "crash-mid-reclaim: request ledger");
        assert!(rep_a.memory.balanced(), "crash-mid-reclaim: memory ledger");
        assert_eq!(hash_a, hash_b, "crash-mid-reclaim: traces must replay");
        assert_eq!(
            rep_a.memory, rep_b.memory,
            "crash-mid-reclaim: memory ledgers must replay"
        );
        assert_eq!(
            tables_a, tables_b,
            "crash-mid-reclaim: replay must rebuild identical VMA/PD tables"
        );
        rep_a
    }

    /// Folds the window sequence into per-day residency records.
    fn fold(&self, rep: &ClusterReport, windows: &[WindowRecord]) -> SoakReport {
        let span_us = self.requests as f64 / self.rate_rps * 1e6;
        let day_us = span_us / self.days as f64;
        let mut days: Vec<SoakDay> = (0..self.days)
            .map(|day| SoakDay {
                day,
                windows: 0,
                offered: 0,
                shed: 0,
                peak_resident_bytes: 0,
                mean_resident_bytes: 0.0,
                p99_us: None,
            })
            .collect();
        for w in windows {
            let idx = ((w.at.as_us_f64() / day_us) as usize).min(self.days - 1);
            let d = &mut days[idx];
            d.windows += 1;
            d.offered += w.offered;
            d.shed += w.shed;
            d.peak_resident_bytes = d.peak_resident_bytes.max(w.resident_bytes);
            d.mean_resident_bytes += w.resident_bytes as f64;
            if let Some(p) = w.p99_us {
                d.p99_us = Some(d.p99_us.map_or(p, |q: f64| q.max(p)));
            }
        }
        for d in &mut days {
            if d.windows > 0 {
                d.mean_resident_bytes /= d.windows as f64;
            }
        }
        let peak_resident_bytes = windows.iter().map(|w| w.resident_bytes).max().unwrap_or(0);
        SoakReport {
            days,
            offered: rep.offered,
            completed: rep.completed,
            shed: rep.shed,
            memory: rep.memory,
            peak_workers: rep.autoscale.peak_workers,
            peak_resident_bytes,
            trace_hash: rep.trace_hash,
            p99_us: rep.p99().map_or(0.0, |d| d.as_ns_f64() / 1_000.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::WorkloadKind;

    fn quick_soak() -> SoakCampaign {
        // Half-length week: the residency profile is set by the rate
        // (concurrency), not the request count, so the governor sees the
        // same working set while the test costs half the wall-clock.
        SoakCampaign::new(2.0e6, 3_500)
    }

    #[test]
    fn week_of_diurnal_traffic_holds_residency_bounds() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_soak().run(&w);
        assert_eq!(rep.days.len(), 7);
        assert!(rep.days.iter().any(|d| d.windows > 0));
        assert!(rep.memory.balanced());
        assert!(rep.memory.pool_evictions > 0, "troughs must evict");
        assert!(rep.peak_resident_bytes > 0, "windows must observe memory");
    }

    /// Quarter-week campaign for the cheap probes: same rate (same
    /// working set), fewer arrivals.
    fn tiny_soak() -> SoakCampaign {
        SoakCampaign::new(2.0e6, 1_750)
    }

    #[test]
    fn soak_replays_bit_identically() {
        let w = Workload::build(WorkloadKind::Hotel);
        let c = tiny_soak();
        let (rep_a, win_a) = c.run_cluster(&w);
        let (rep_b, win_b) = c.run_cluster(&w);
        assert_eq!(win_a, win_b);
        assert_eq!(rep_a.trace_hash, rep_b.trace_hash);
        assert_eq!(rep_a.memory, rep_b.memory);
    }

    #[test]
    fn crash_mid_reclaim_replays_to_identical_tables() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_soak().crash_replay(&w);
        assert!(rep.crash.crashes >= 1);
        assert!(rep.memory.balanced());
    }

    #[test]
    fn windows_carry_pressure_and_residency() {
        let w = Workload::build(WorkloadKind::Hotel);
        let (_, windows) = tiny_soak().run_cluster(&w);
        assert!(!windows.is_empty());
        assert!(windows.iter().any(|win| win.resident_bytes > 0));
    }

    #[test]
    fn table_lists_every_day() {
        // Formatting needs no simulation; a hand-built report suffices.
        let day = |d| SoakDay {
            day: d,
            windows: 4,
            offered: 100,
            shed: 0,
            peak_resident_bytes: 1 << 20,
            mean_resident_bytes: 1.0e6,
            p99_us: Some(9.5),
        };
        let rep = SoakReport {
            days: (0..7).map(day).collect(),
            offered: 700,
            completed: 700,
            shed: 0,
            memory: Default::default(),
            peak_workers: 2,
            peak_resident_bytes: 1 << 20,
            trace_hash: 0,
            p99_us: 9.5,
        };
        assert_eq!(rep.table().lines().count(), 1 + rep.days.len());
    }
}
