//! Autoscaling campaigns: cost-vs-SLO under non-stationary traffic.
//!
//! Where a [`failover`](crate::failover) campaign holds the fleet fixed
//! and scripts incidents, an autoscale campaign lets the
//! [`jord_core::ClusterAutoscaler`] move the fleet while the offered load
//! itself moves — a flash crowd stepping the rate ×K, a diurnal sinusoid,
//! Markov-modulated bursts ([`ArrivalProcess`]). Each scenario is run
//! twice in spirit: once with the fleet pinned at its initial size (what
//! the crowd costs a fleet that cannot grow) and once with the autoscaler
//! and the brownout ladder engaged (what surviving it costs in
//! worker-seconds). The campaign's assertions are the overload-survival
//! contract:
//!
//! 1. **Conservation, always**: every point's ledger balances
//!    (`offered == completed + failed + shed`) with zero lost requests —
//!    including the point where a scripted kill crashes a freshly spawned
//!    worker while the post-crowd scale-down is draining the fleet.
//! 2. **Elasticity pays**: the autoscaled crowd run sheds no more than
//!    the pinned run and completes at least as much.
//! 3. **No flapping**: scale reversals stay within one per cooldown
//!    window across the whole run.
//! 4. **Determinism**: identical seeds reproduce the identical
//!    [`WindowRecord`] sequence, decision by decision, and the identical
//!    fleet trace hash.

use jord_core::{
    AutoscalerConfig, ClusterConfig, ClusterDispatcher, ClusterReport, DrainPlan, EngineConfig,
    RecoveryPolicy, RuntimeConfig, SystemVariant, WindowRecord, WorkerKill,
};
use jord_hw::MachineConfig;

use crate::apps::Workload;
use crate::loadgen::{ArrivalProcess, LoadGen};

/// One measured run of an autoscale campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalePoint {
    /// What the point scripted ("pinned", "scale", "scale+kill", …).
    pub scenario: &'static str,
    /// The arrival process label ("flash-crowd", "diurnal", …).
    pub process: &'static str,
    /// Requests pushed at the dispatcher.
    pub offered: u64,
    /// Requests completed (exactly once each).
    pub completed: u64,
    /// Requests terminally failed.
    pub failed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests neither completed, failed, nor shed (must be 0).
    pub lost: u64,
    /// Scale-up decisions applied.
    pub scale_ups: u64,
    /// Scale-down decisions applied.
    pub scale_downs: u64,
    /// Direction reversals (up→down or down→up).
    pub reversals: u64,
    /// Largest simultaneous fleet size reached.
    pub peak_workers: u64,
    /// Integrated fleet cost: worker-seconds of simulated uptime.
    pub worker_seconds: f64,
    /// Brownout level changes across the fleet.
    pub brownout_transitions: u64,
    /// Total simulated time spent browned out (µs).
    pub brownout_us: f64,
    /// Fraction of evaluation windows that met the SLO.
    pub slo_attainment: f64,
    /// Autoscaler evaluation windows recorded.
    pub windows: usize,
    /// Workers evicted by the failure detector.
    pub evictions: u64,
    /// p99 end-to-end latency, µs.
    pub p99_us: f64,
    /// completed / offered.
    pub goodput: f64,
    /// FNV-1a fold of every worker's lifecycle-trace hash.
    pub trace_hash: u64,
}

impl AutoscalePoint {
    /// True when the request ledger balances: nothing offered was lost.
    pub fn lossless(&self) -> bool {
        self.lost == 0 && self.offered == self.completed + self.failed + self.shed
    }
}

/// An autoscale-campaign recipe: one workload, a pinned-fleet flash-crowd
/// baseline, the same crowd with the autoscaler engaged, the crowd with a
/// kill racing the post-crowd scale-down, and autoscaled diurnal and
/// burst traffic.
#[derive(Debug, Clone)]
pub struct AutoscaleCampaign {
    /// Jord variant every worker runs.
    pub variant: SystemVariant,
    /// Hardware configuration of every worker.
    pub machine: MachineConfig,
    /// Initial fleet size (the pinned size for the baseline).
    pub workers: usize,
    /// Base offered load, requests/second; the arrival processes move
    /// around it.
    pub rate_rps: f64,
    /// Requests per point.
    pub requests: usize,
    /// Cluster seed (workers derive per-worker streams from it).
    pub seed: u64,
    /// Autoscaler tuning shared by the scaled points.
    pub autoscale: AutoscalerConfig,
    /// Per-worker admission queue bound (brownout tightens it).
    pub shed_bound: usize,
    /// The flash-crowd shape for the crowd points.
    pub crowd: ArrivalProcess,
    /// The diurnal shape.
    pub diurnal: ArrivalProcess,
    /// The Markov-burst shape.
    pub burst: ArrivalProcess,
    /// When the scripted drain of the race point starts, µs (aim it
    /// inside the crowd, when queues are deep and the autoscaler is
    /// actively scaling).
    pub drain_at_us: f64,
    /// When the kill lands on the draining worker, µs (shortly after the
    /// drain starts: heartbeat loss mid-drain).
    pub kill_at_us: f64,
    /// Which worker the race point drains and then kills.
    pub victim: usize,
    /// Cluster engine every point runs on: `None` for the sequential
    /// engine, `Some` for the conservative parallel engine. The results
    /// are bit-identical either way — this knob exists so campaigns can
    /// differential-test that claim and so large sweeps can buy
    /// wall-clock speed.
    pub engine: Option<EngineConfig>,
}

impl AutoscaleCampaign {
    /// A default campaign: two initial Jord workers on the Table 2
    /// machine, a ×4 flash crowd over the middle half of the arrival
    /// span, and a drain+kill race landing just after the crowd hits
    /// (deep queues guarantee the detector has time to convict).
    ///
    /// The crowd compresses arrival *time*: `n` requests at ×4 the base
    /// rate land in a quarter of the wall-clock, so the crowd phase of
    /// the trace runs from `span/4` to roughly `span/4 + (3/8)·span`
    /// rather than to `3·span/4`. The race is aimed shortly after the
    /// step.
    pub fn new(rate_rps: f64, requests: usize) -> Self {
        let span_us = requests as f64 / rate_rps * 1e6;
        let autoscale = AutoscalerConfig {
            min_workers: 1,
            max_workers: 6,
            target_p99_us: Some(60.0),
            ..AutoscalerConfig::default()
        };
        AutoscaleCampaign {
            variant: SystemVariant::Jord,
            machine: MachineConfig::isca25(),
            workers: 2,
            rate_rps,
            requests,
            seed: 42,
            autoscale,
            shed_bound: 64,
            crowd: ArrivalProcess::FlashCrowd {
                at_us: span_us / 4.0,
                factor: 4.0,
                duration_us: span_us / 2.0,
            },
            diurnal: ArrivalProcess::Diurnal {
                period_us: span_us / 2.0,
                amplitude: 0.8,
            },
            burst: ArrivalProcess::MarkovBurst {
                burst_factor: 4.0,
                mean_normal_us: span_us / 10.0,
                mean_burst_us: span_us / 20.0,
            },
            drain_at_us: span_us * 0.29,
            kill_at_us: span_us * 0.2905,
            // Scale-down retires the highest-index idle slot first, so
            // worker 0 is the one guaranteed to still be routing when the
            // race fires.
            victim: 0,
            engine: None,
        }
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs every point on the conservative parallel engine.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Runs the campaign on `workload`.
    ///
    /// # Panics
    ///
    /// Panics if any point loses a request, if the autoscaled crowd run
    /// sheds more or completes less than the pinned run, if no scale-up
    /// ever fires under the crowd, if reversals exceed one per cooldown
    /// window, or if the kill point fails to evict the crashed worker.
    pub fn run(&self, workload: &Workload) -> AutoscaleReport {
        let pinned = self.run_point(workload, "pinned", &self.crowd, false, |_, _| {});
        let scaled = self.run_point(workload, "scale", &self.crowd, true, |_, _| {});
        assert!(
            scaled.scale_ups >= 1,
            "a x4 flash crowd must provoke at least one scale-up"
        );
        assert!(
            scaled.peak_workers > self.workers as u64,
            "the fleet must actually grow past its initial size"
        );
        assert!(
            scaled.shed <= pinned.shed,
            "elastic fleet must shed no more than the pinned one \
             ({} vs {})",
            scaled.shed,
            pinned.shed
        );
        assert!(
            scaled.completed >= pinned.completed,
            "elastic fleet must complete at least as much as the pinned one"
        );
        let span_us = self.requests as f64 / self.rate_rps * 1e6;
        let reversal_bound = (span_us / self.autoscale.cooldown_us).ceil() as u64;
        assert!(
            scaled.reversals <= reversal_bound,
            "reversals ({}) exceed one per cooldown window ({})",
            scaled.reversals,
            reversal_bound
        );

        // The race: a worker starts draining (the same drain-aware
        // rebalancing a scale-down retire uses) mid-crowd, then loses its
        // heartbeat mid-drain — while the autoscaler is concurrently
        // growing and shrinking the rest of the fleet.
        let killed = self.run_point(workload, "scale+kill", &self.crowd, true, |cfg, c| {
            cfg.drains = vec![DrainPlan {
                worker: c.victim,
                at_us: c.drain_at_us,
                resume_at_us: None,
            }];
            cfg.kill = Some(WorkerKill {
                worker: c.victim,
                at_us: c.kill_at_us,
            });
        });
        assert!(
            killed.evictions >= 1,
            "the detector must convict the worker killed mid-drain"
        );
        assert!(
            killed.scale_ups >= 1,
            "scale events must actually race the crash"
        );

        let diurnal = self.run_point(workload, "scale", &self.diurnal, true, |_, _| {});
        let burst = self.run_point(workload, "scale", &self.burst, true, |_, _| {});

        let points = vec![pinned, scaled, killed, diurnal, burst];
        for p in &points {
            assert!(
                p.lossless(),
                "{}/{}: ledger must balance with zero lost",
                p.scenario,
                p.process
            );
        }
        AutoscaleReport { points }
    }

    /// One seeded cluster run of `process`-shaped traffic, with or
    /// without the autoscaler, with `mutate` applied to the base config
    /// (the campaign itself is passed back so closures can read its
    /// scripted instants).
    pub fn run_point(
        &self,
        workload: &Workload,
        scenario: &'static str,
        process: &ArrivalProcess,
        autoscaled: bool,
        mutate: impl FnOnce(&mut ClusterConfig, &Self),
    ) -> AutoscalePoint {
        let (rep, _) = self.run_cluster(workload, process, autoscaled, mutate);
        Self::point(scenario, process, &rep)
    }

    /// The raw cluster run behind [`AutoscaleCampaign::run_point`],
    /// returning the report and its window sequence (for golden-trace
    /// comparisons).
    pub fn run_cluster(
        &self,
        workload: &Workload,
        process: &ArrivalProcess,
        autoscaled: bool,
        mutate: impl FnOnce(&mut ClusterConfig, &Self),
    ) -> (ClusterReport, Vec<WindowRecord>) {
        let template = RuntimeConfig::variant_on(self.variant, self.machine.clone())
            .with_seed(self.seed)
            .with_recovery(RecoveryPolicy {
                shed_bound: Some(self.shed_bound),
                ..RecoveryPolicy::default()
            });
        let mut cfg = ClusterConfig::new(self.workers, self.seed, template);
        cfg.engine = self.engine;
        if autoscaled {
            cfg.autoscale = Some(self.autoscale);
        }
        mutate(&mut cfg, self);
        let mut cluster =
            ClusterDispatcher::new(cfg, workload.registry.clone()).expect("valid cluster config");
        let mut gen = LoadGen::new(workload, self.seed).expect("workload mix is sampleable");
        for (t, f, b) in gen.arrivals_with(process, self.rate_rps, self.requests) {
            cluster.push_request(t, f, b);
        }
        let rep = cluster.run();
        let windows = rep.windows.clone();
        (rep, windows)
    }

    fn point(
        scenario: &'static str,
        process: &ArrivalProcess,
        rep: &ClusterReport,
    ) -> AutoscalePoint {
        AutoscalePoint {
            scenario,
            process: process.label(),
            offered: rep.offered,
            completed: rep.completed,
            failed: rep.failed,
            shed: rep.shed,
            lost: rep.failover.lost,
            scale_ups: rep.autoscale.scale_ups,
            scale_downs: rep.autoscale.scale_downs,
            reversals: rep.autoscale.reversals,
            peak_workers: rep.autoscale.peak_workers,
            worker_seconds: rep.autoscale.worker_seconds,
            brownout_transitions: rep.autoscale.brownout_transitions,
            brownout_us: rep.autoscale.brownout_ns() / 1_000.0,
            slo_attainment: rep.autoscale.slo_attainment(),
            windows: rep.windows.len(),
            evictions: rep.failover.evictions,
            p99_us: rep.p99().map_or(0.0, |d| d.as_ns_f64() / 1_000.0),
            goodput: rep.goodput(),
            trace_hash: rep.trace_hash,
        }
    }
}

/// The outcome of an autoscale campaign, points in sweep order.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleReport {
    /// `points[0]` is the pinned crowd baseline, then the autoscaled
    /// crowd, the kill race, the diurnal run, and the burst run.
    pub points: Vec<AutoscalePoint>,
}

impl AutoscaleReport {
    /// The pinned-fleet crowd baseline.
    pub fn pinned(&self) -> &AutoscalePoint {
        &self.points[0]
    }

    /// True when every point's request ledger balances.
    pub fn lossless(&self) -> bool {
        self.points.iter().all(AutoscalePoint::lossless)
    }

    /// Formats the campaign as an aligned text table (the cost-vs-SLO
    /// comparison: worker-seconds bought vs shed load and attainment).
    pub fn table(&self) -> String {
        let mut out = String::from(
            "scenario    process       offered  completed   shed  ups  downs  rev  peak  \
             worker_s  brown_us  attain    p99_us  goodput\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<11} {:<12} {:>8} {:>10} {:>6} {:>4} {:>6} {:>4} {:>5} {:>9.3} {:>9.1} \
                 {:>7.3} {:>9.3}   {:.4}\n",
                p.scenario,
                p.process,
                p.offered,
                p.completed,
                p.shed,
                p.scale_ups,
                p.scale_downs,
                p.reversals,
                p.peak_workers,
                p.worker_seconds,
                p.brownout_us,
                p.slo_attainment,
                p.p99_us,
                p.goodput,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::WorkloadKind;

    fn quick_campaign() -> AutoscaleCampaign {
        AutoscaleCampaign::new(2.0e6, 4_000)
    }

    #[test]
    fn campaign_survives_crowds_kills_and_bursts() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_campaign().run(&w);
        assert_eq!(rep.points.len(), 5);
        assert!(rep.lossless());
        // The pinned fleet never scales.
        assert_eq!(rep.pinned().scale_ups, 0);
        assert_eq!(rep.pinned().peak_workers, 2);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let w = Workload::build(WorkloadKind::Hotel);
        let c = quick_campaign();
        let a = c.run_point(&w, "scale", &c.crowd, true, |_, _| {});
        let b = c.run_point(&w, "scale", &c.crowd, true, |_, _| {});
        assert_eq!(a, b, "same seed must reproduce the whole point");
        assert_eq!(a.trace_hash, b.trace_hash);
    }

    #[test]
    fn window_sequences_are_identical_across_reruns() {
        let w = Workload::build(WorkloadKind::Hotel);
        let c = quick_campaign();
        let (_, wa) = c.run_cluster(&w, &c.crowd, true, |_, _| {});
        let (_, wb) = c.run_cluster(&w, &c.crowd, true, |_, _| {});
        assert!(!wa.is_empty(), "autoscaled runs must record windows");
        assert_eq!(wa, wb, "decision sequences must replay exactly");
    }

    #[test]
    fn table_lists_every_point() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_campaign().run(&w);
        let table = rep.table();
        assert_eq!(table.lines().count(), 1 + rep.points.len());
        assert!(table.contains("pinned"));
        assert!(table.contains("scale+kill"));
        assert!(table.contains("markov-burst"));
    }
}
