//! wrk2-style open-loop load generation (§5).
//!
//! "Function invocation requests are generated using a load generator
//! similar to wrk2 with configurable loads and a Poisson arrival process."
//! Arrivals are open-loop: the generator never waits for responses, so
//! queueing delay shows up in the measured latency instead of silently
//! throttling the load (the coordinated-omission trap wrk2 exists to
//! avoid).

use jord_core::FunctionId;
use jord_sim::{Rng, SimDuration, SimTime};

use crate::apps::Workload;

/// An open-loop Poisson request generator over a workload's entry mix.
#[derive(Debug)]
pub struct LoadGen {
    rng: Rng,
    /// (cumulative weight, func, bytes), normalized to 1.0.
    mix: Vec<(f64, FunctionId, u64)>,
}

impl LoadGen {
    /// Creates a generator for `workload` seeded with `seed`.
    pub fn new(workload: &Workload, seed: u64) -> Self {
        let total: f64 = workload.entries.iter().map(|e| e.weight).sum();
        let mut acc = 0.0;
        let mix = workload
            .entries
            .iter()
            .map(|e| {
                acc += e.weight / total;
                (acc, e.func, e.arg_bytes)
            })
            .collect();
        LoadGen {
            rng: Rng::new(seed ^ 0x6f70_656e_6c6f_6f70),
            mix,
        }
    }

    /// Draws one entry point from the mix.
    fn draw(&mut self) -> (FunctionId, u64) {
        let x = self.rng.next_f64();
        for &(cum, func, bytes) in &self.mix {
            if x <= cum {
                return (func, bytes);
            }
        }
        let &(_, func, bytes) = self.mix.last().expect("non-empty mix");
        (func, bytes)
    }

    /// Generates `n` arrivals at `rate_rps` requests per second (Poisson:
    /// exponential inter-arrival times with mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate_rps` is not positive.
    /// Generates arrivals from an explicit timestamp trace (e.g. replayed
    /// from a production log, as cold-start studies do with the Azure
    /// traces); the entry-point mix is still drawn per request.
    ///
    /// Timestamps must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if the trace goes backwards in time.
    pub fn arrivals_from_trace(&mut self, trace: &[SimTime]) -> Vec<(SimTime, FunctionId, u64)> {
        let mut last = SimTime::ZERO;
        trace
            .iter()
            .map(|&t| {
                assert!(t >= last, "trace timestamps must be non-decreasing");
                last = t;
                let (func, bytes) = self.draw();
                (t, func, bytes)
            })
            .collect()
    }

    pub fn arrivals(&mut self, rate_rps: f64, n: usize) -> Vec<(SimTime, FunctionId, u64)> {
        assert!(rate_rps > 0.0, "rate must be positive");
        let mean_ns = 1e9 / rate_rps;
        let mut t = SimTime::ZERO;
        (0..n)
            .map(|_| {
                t += SimDuration::from_ns_f64(self.rng.exponential(mean_ns));
                let (func, bytes) = self.draw();
                (t, func, bytes)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::WorkloadKind;

    fn gen() -> LoadGen {
        LoadGen::new(&Workload::build(WorkloadKind::Hotel), 3)
    }

    #[test]
    fn arrival_rate_converges() {
        let mut g = gen();
        let n = 100_000;
        let rate = 2.0e6; // 2 MRPS
        let arr = g.arrivals(rate, n);
        let span_s = arr.last().unwrap().0.as_us_f64() * 1e-6;
        let measured = n as f64 / span_s;
        assert!(
            (measured - rate).abs() / rate < 0.02,
            "measured {measured:.0} rps vs {rate:.0}"
        );
    }

    #[test]
    fn arrivals_are_monotone_nondecreasing() {
        let mut g = gen();
        let arr = g.arrivals(1.0e6, 10_000);
        assert!(arr.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn mix_fractions_match_weights() {
        let w = Workload::build(WorkloadKind::Hotel);
        let mut g = LoadGen::new(&w, 5);
        let arr = g.arrivals(1.0e6, 100_000);
        let sn = w.entries[0].func;
        let frac = arr.iter().filter(|(_, f, _)| *f == sn).count() as f64 / arr.len() as f64;
        assert!((frac - 0.70).abs() < 0.02, "SearchNearby share {frac}");
    }

    #[test]
    fn same_seed_reproduces_the_trace() {
        let a = LoadGen::new(&Workload::build(WorkloadKind::Media), 11).arrivals(1.5e6, 1000);
        let b = LoadGen::new(&Workload::build(WorkloadKind::Media), 11).arrivals(1.5e6, 1000);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        gen().arrivals(0.0, 1);
    }

    #[test]
    fn trace_replay_preserves_timestamps_and_draws_the_mix() {
        let mut g = gen();
        let trace: Vec<SimTime> = (0..1000).map(|i| SimTime::from_ns(i * 333)).collect();
        let arr = g.arrivals_from_trace(&trace);
        assert_eq!(arr.len(), 1000);
        assert!(arr.iter().zip(&trace).all(|(a, &t)| a.0 == t));
        // Both entry points appear.
        let distinct: std::collections::HashSet<_> = arr.iter().map(|a| a.1).collect();
        assert!(distinct.len() >= 2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn backwards_trace_panics() {
        let mut g = gen();
        g.arrivals_from_trace(&[SimTime::from_ns(10), SimTime::from_ns(5)]);
    }
}
