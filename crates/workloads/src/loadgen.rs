//! wrk2-style open-loop load generation (§5).
//!
//! "Function invocation requests are generated using a load generator
//! similar to wrk2 with configurable loads and a Poisson arrival process."
//! Arrivals are open-loop: the generator never waits for responses, so
//! queueing delay shows up in the measured latency instead of silently
//! throttling the load (the coordinated-omission trap wrk2 exists to
//! avoid).
//!
//! Beyond the paper's stationary Poisson process, [`ArrivalProcess`]
//! models the non-stationary traffic that drives autoscaling studies: a
//! diurnal sinusoid, a flash-crowd step (rate ×K for a window), and a
//! two-state Markov-modulated Poisson process (bursty on/off traffic).
//! Time-varying rates are sampled with Lewis–Shedler thinning: candidate
//! arrivals are drawn from a homogeneous Poisson process at the peak rate
//! and accepted with probability `rate(t) / peak` — exact for any bounded
//! rate function, and still a pure function of the seed.

use jord_core::{ConfigError, FunctionId};
use jord_sim::{Rng, SimDuration, SimTime};

use crate::apps::Workload;

/// The arrival-time law an open-loop load follows.
///
/// Every variant is parameterized by a *base* rate given at generation
/// time; the process shapes how the instantaneous rate moves around it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Stationary Poisson arrivals at the base rate (the paper's §5
    /// generator).
    Poisson,
    /// A sinusoidal day/night swing:
    /// `rate(t) = base · (1 + amplitude · sin(2πt / period))`.
    Diurnal {
        /// Period of one full cycle, µs of simulated time.
        period_us: f64,
        /// Swing around the base rate, in `[0, 1)` so the trough stays
        /// positive.
        amplitude: f64,
    },
    /// A flash crowd: the rate steps to `base · factor` for a window and
    /// back.
    FlashCrowd {
        /// When the crowd arrives, µs.
        at_us: f64,
        /// Rate multiplier during the crowd (≥ 1).
        factor: f64,
        /// How long the crowd stays, µs.
        duration_us: f64,
    },
    /// A two-state Markov-modulated Poisson process: exponentially
    /// distributed quiet phases at the base rate alternate with burst
    /// phases at `base · burst_factor`.
    MarkovBurst {
        /// Rate multiplier inside a burst (≥ 1).
        burst_factor: f64,
        /// Mean quiet-phase length, µs.
        mean_normal_us: f64,
        /// Mean burst-phase length, µs.
        mean_burst_us: f64,
    },
}

impl ArrivalProcess {
    /// Short label for tables and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Diurnal { .. } => "diurnal",
            ArrivalProcess::FlashCrowd { .. } => "flash-crowd",
            ArrivalProcess::MarkovBurst { .. } => "markov-burst",
        }
    }

    /// Validates the shape parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let bad = |reason: String| Err(ConfigError::Workload { reason });
        match *self {
            ArrivalProcess::Poisson => Ok(()),
            ArrivalProcess::Diurnal {
                period_us,
                amplitude,
            } => {
                if !(period_us > 0.0 && period_us.is_finite()) {
                    return bad(format!("diurnal period must be positive, got {period_us}"));
                }
                if !(0.0..1.0).contains(&amplitude) {
                    return bad(format!(
                        "diurnal amplitude must be in [0, 1) so the trough rate \
                         stays positive, got {amplitude}"
                    ));
                }
                Ok(())
            }
            ArrivalProcess::FlashCrowd {
                at_us,
                factor,
                duration_us,
            } => {
                if !(at_us >= 0.0 && at_us.is_finite()) {
                    return bad(format!(
                        "flash crowd start must be non-negative, got {at_us}"
                    ));
                }
                if !(factor >= 1.0 && factor.is_finite()) {
                    return bad(format!(
                        "flash crowd factor must be at least 1, got {factor}"
                    ));
                }
                if !(duration_us > 0.0 && duration_us.is_finite()) {
                    return bad(format!(
                        "flash crowd duration must be positive, got {duration_us}"
                    ));
                }
                Ok(())
            }
            ArrivalProcess::MarkovBurst {
                burst_factor,
                mean_normal_us,
                mean_burst_us,
            } => {
                if !(burst_factor >= 1.0 && burst_factor.is_finite()) {
                    return bad(format!(
                        "burst factor must be at least 1, got {burst_factor}"
                    ));
                }
                if !(mean_normal_us > 0.0 && mean_burst_us > 0.0) {
                    return bad(format!(
                        "phase means must be positive, got normal {mean_normal_us} / \
                         burst {mean_burst_us}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// The instantaneous rate at `t_us`, for a base rate of `base_rps`.
    pub fn rate_at(&self, base_rps: f64, t_us: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson | ArrivalProcess::MarkovBurst { .. } => base_rps,
            ArrivalProcess::Diurnal {
                period_us,
                amplitude,
            } => base_rps * (1.0 + amplitude * (std::f64::consts::TAU * t_us / period_us).sin()),
            ArrivalProcess::FlashCrowd {
                at_us,
                factor,
                duration_us,
            } => {
                if t_us >= at_us && t_us < at_us + duration_us {
                    base_rps * factor
                } else {
                    base_rps
                }
            }
        }
    }

    /// The thinning envelope: the highest rate the process ever reaches.
    pub fn peak_rate(&self, base_rps: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson => base_rps,
            ArrivalProcess::Diurnal { amplitude, .. } => base_rps * (1.0 + amplitude),
            ArrivalProcess::FlashCrowd { factor, .. } => base_rps * factor,
            ArrivalProcess::MarkovBurst { burst_factor, .. } => base_rps * burst_factor,
        }
    }
}

/// An open-loop request generator over a workload's entry mix.
#[derive(Debug)]
pub struct LoadGen {
    rng: Rng,
    /// (cumulative weight, func, bytes), normalized to 1.0.
    mix: Vec<(f64, FunctionId, u64)>,
}

impl LoadGen {
    /// Creates a generator for `workload` seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Rejects a workload whose entry mix cannot be sampled: no entries,
    /// a negative or non-finite weight, or weights summing to zero (the
    /// normalization would divide by zero).
    pub fn new(workload: &Workload, seed: u64) -> Result<Self, ConfigError> {
        let bad = |reason: String| Err(ConfigError::Workload { reason });
        if workload.entries.is_empty() {
            return bad("workload has no entry points to draw from".into());
        }
        for e in &workload.entries {
            if !(e.weight >= 0.0 && e.weight.is_finite()) {
                return bad(format!(
                    "entry weight must be finite and non-negative, got {}",
                    e.weight
                ));
            }
        }
        let total: f64 = workload.entries.iter().map(|e| e.weight).sum();
        if total <= 0.0 {
            return bad("entry weights sum to zero; the mix cannot be normalized".into());
        }
        let mut acc = 0.0;
        let mix = workload
            .entries
            .iter()
            .map(|e| {
                acc += e.weight / total;
                (acc, e.func, e.arg_bytes)
            })
            .collect();
        Ok(LoadGen {
            rng: Rng::new(seed ^ 0x6f70_656e_6c6f_6f70),
            mix,
        })
    }

    /// Draws one entry point from the mix.
    fn draw(&mut self) -> (FunctionId, u64) {
        let x = self.rng.next_f64();
        for &(cum, func, bytes) in &self.mix {
            if x <= cum {
                return (func, bytes);
            }
        }
        let &(_, func, bytes) = self.mix.last().expect("non-empty mix");
        (func, bytes)
    }

    /// Generates arrivals from an explicit timestamp trace (e.g. replayed
    /// from a production log, as cold-start studies do with the Azure
    /// traces); the entry-point mix is still drawn per request.
    ///
    /// Timestamps must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if the trace goes backwards in time.
    pub fn arrivals_from_trace(&mut self, trace: &[SimTime]) -> Vec<(SimTime, FunctionId, u64)> {
        let mut last = SimTime::ZERO;
        trace
            .iter()
            .map(|&t| {
                assert!(t >= last, "trace timestamps must be non-decreasing");
                last = t;
                let (func, bytes) = self.draw();
                (t, func, bytes)
            })
            .collect()
    }

    /// Generates `n` arrivals at `rate_rps` requests per second (Poisson:
    /// exponential inter-arrival times with mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate_rps` is not positive.
    pub fn arrivals(&mut self, rate_rps: f64, n: usize) -> Vec<(SimTime, FunctionId, u64)> {
        assert!(rate_rps > 0.0, "rate must be positive");
        let mean_ns = 1e9 / rate_rps;
        let mut t = SimTime::ZERO;
        (0..n)
            .map(|_| {
                t += SimDuration::from_ns_f64(self.rng.exponential(mean_ns));
                let (func, bytes) = self.draw();
                (t, func, bytes)
            })
            .collect()
    }

    /// Generates `n` arrivals following `process` around a base rate of
    /// `base_rps`.
    ///
    /// [`ArrivalProcess::Poisson`] reduces to [`LoadGen::arrivals`] (same
    /// draws, same trace). The time-varying shapes use Lewis–Shedler
    /// thinning at the process's peak rate; [`ArrivalProcess::MarkovBurst`]
    /// simulates its phase chain explicitly.
    ///
    /// # Panics
    ///
    /// Panics if `rate_rps` is not positive or the process parameters are
    /// invalid (validate with [`ArrivalProcess::validate`] first to get a
    /// typed error).
    pub fn arrivals_with(
        &mut self,
        process: &ArrivalProcess,
        base_rps: f64,
        n: usize,
    ) -> Vec<(SimTime, FunctionId, u64)> {
        assert!(base_rps > 0.0, "rate must be positive");
        if let Err(e) = process.validate() {
            panic!("invalid arrival process: {e}");
        }
        match *process {
            ArrivalProcess::Poisson => self.arrivals(base_rps, n),
            ArrivalProcess::MarkovBurst {
                burst_factor,
                mean_normal_us,
                mean_burst_us,
            } => self.mmpp_arrivals(base_rps, burst_factor, mean_normal_us, mean_burst_us, n),
            _ => self.thinned_arrivals(process, base_rps, n),
        }
    }

    /// Lewis–Shedler thinning: draw candidates at the peak rate, accept
    /// each with probability `rate(t) / peak`. Both the candidate gap and
    /// the acceptance coin come from the one seeded stream, so the trace
    /// is reproducible.
    fn thinned_arrivals(
        &mut self,
        process: &ArrivalProcess,
        base_rps: f64,
        n: usize,
    ) -> Vec<(SimTime, FunctionId, u64)> {
        let peak = process.peak_rate(base_rps);
        let mean_ns = 1e9 / peak;
        let mut t_ns = 0.0f64;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            t_ns += self.rng.exponential(mean_ns);
            let rate = process.rate_at(base_rps, t_ns / 1e3);
            if self.rng.next_f64() * peak <= rate {
                let (func, bytes) = self.draw();
                out.push((SimTime::from_ns(t_ns as u64), func, bytes));
            }
        }
        out
    }

    /// Explicit two-state MMPP: alternate exponentially long quiet/burst
    /// phases; within a phase, arrivals are Poisson at that phase's rate.
    /// Crossing a phase boundary discards the in-flight gap — exponential
    /// inter-arrivals are memoryless, so redrawing at the new rate is
    /// exact.
    fn mmpp_arrivals(
        &mut self,
        base_rps: f64,
        burst_factor: f64,
        mean_normal_us: f64,
        mean_burst_us: f64,
        n: usize,
    ) -> Vec<(SimTime, FunctionId, u64)> {
        let mut in_burst = false;
        let mut phase_left_ns = self.rng.exponential(mean_normal_us * 1e3);
        let mut t_ns = 0.0f64;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let rate = if in_burst {
                base_rps * burst_factor
            } else {
                base_rps
            };
            let gap = self.rng.exponential(1e9 / rate);
            if gap < phase_left_ns {
                t_ns += gap;
                phase_left_ns -= gap;
                let (func, bytes) = self.draw();
                out.push((SimTime::from_ns(t_ns as u64), func, bytes));
            } else {
                t_ns += phase_left_ns;
                in_burst = !in_burst;
                phase_left_ns = self.rng.exponential(
                    (if in_burst {
                        mean_burst_us
                    } else {
                        mean_normal_us
                    }) * 1e3,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::WorkloadKind;

    fn gen() -> LoadGen {
        LoadGen::new(&Workload::build(WorkloadKind::Hotel), 3).unwrap()
    }

    #[test]
    fn arrival_rate_converges() {
        let mut g = gen();
        let n = 100_000;
        let rate = 2.0e6; // 2 MRPS
        let arr = g.arrivals(rate, n);
        let span_s = arr.last().unwrap().0.as_us_f64() * 1e-6;
        let measured = n as f64 / span_s;
        assert!(
            (measured - rate).abs() / rate < 0.02,
            "measured {measured:.0} rps vs {rate:.0}"
        );
    }

    #[test]
    fn arrivals_are_monotone_nondecreasing() {
        let mut g = gen();
        let arr = g.arrivals(1.0e6, 10_000);
        assert!(arr.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn mix_fractions_match_weights() {
        let w = Workload::build(WorkloadKind::Hotel);
        let mut g = LoadGen::new(&w, 5).unwrap();
        let arr = g.arrivals(1.0e6, 100_000);
        let sn = w.entries[0].func;
        let frac = arr.iter().filter(|(_, f, _)| *f == sn).count() as f64 / arr.len() as f64;
        assert!((frac - 0.70).abs() < 0.02, "SearchNearby share {frac}");
    }

    #[test]
    fn same_seed_reproduces_the_trace() {
        let a = LoadGen::new(&Workload::build(WorkloadKind::Media), 11)
            .unwrap()
            .arrivals(1.5e6, 1000);
        let b = LoadGen::new(&Workload::build(WorkloadKind::Media), 11)
            .unwrap()
            .arrivals(1.5e6, 1000);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        gen().arrivals(0.0, 1);
    }

    #[test]
    fn empty_and_zero_weight_mixes_are_rejected() {
        let mut w = Workload::build(WorkloadKind::Hotel);
        w.entries.clear();
        assert!(
            matches!(LoadGen::new(&w, 1), Err(ConfigError::Workload { .. })),
            "an empty mix must be rejected, not divide by zero"
        );
        let mut w = Workload::build(WorkloadKind::Hotel);
        for e in &mut w.entries {
            e.weight = 0.0;
        }
        assert!(
            matches!(LoadGen::new(&w, 1), Err(ConfigError::Workload { .. })),
            "an all-zero mix must be rejected, not divide by zero"
        );
        let mut w = Workload::build(WorkloadKind::Hotel);
        w.entries[0].weight = f64::NAN;
        assert!(
            matches!(LoadGen::new(&w, 1), Err(ConfigError::Workload { .. })),
            "a NaN weight must be rejected"
        );
    }

    #[test]
    fn trace_replay_preserves_timestamps_and_draws_the_mix() {
        let mut g = gen();
        let trace: Vec<SimTime> = (0..1000).map(|i| SimTime::from_ns(i * 333)).collect();
        let arr = g.arrivals_from_trace(&trace);
        assert_eq!(arr.len(), 1000);
        assert!(arr.iter().zip(&trace).all(|(a, &t)| a.0 == t));
        // Both entry points appear.
        let distinct: std::collections::HashSet<_> = arr.iter().map(|a| a.1).collect();
        assert!(distinct.len() >= 2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn backwards_trace_panics() {
        let mut g = gen();
        g.arrivals_from_trace(&[SimTime::from_ns(10), SimTime::from_ns(5)]);
    }

    #[test]
    fn poisson_process_reduces_to_plain_arrivals() {
        let a = gen().arrivals(1.0e6, 2_000);
        let b = gen().arrivals_with(&ArrivalProcess::Poisson, 1.0e6, 2_000);
        assert_eq!(a, b);
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_the_window() {
        let mut g = gen();
        let crowd = ArrivalProcess::FlashCrowd {
            at_us: 200.0,
            factor: 4.0,
            duration_us: 200.0,
        };
        let arr = g.arrivals_with(&crowd, 1.0e6, 4_000);
        assert!(arr.windows(2).all(|w| w[0].0 <= w[1].0));
        let in_crowd = arr
            .iter()
            .filter(|(t, _, _)| (200.0..400.0).contains(&t.as_us_f64()))
            .count();
        let before = arr.iter().filter(|(t, _, _)| t.as_us_f64() < 200.0).count();
        // 200 µs at 4 MRPS ≈ 800 arrivals vs ≈ 200 in the quiet window
        // of the same length before the step.
        assert!(
            in_crowd as f64 > 2.5 * before as f64,
            "crowd window must be dense: {in_crowd} vs {before} before"
        );
    }

    #[test]
    fn diurnal_rate_swings_between_peak_and_trough() {
        let mut g = gen();
        let diurnal = ArrivalProcess::Diurnal {
            period_us: 1_000.0,
            amplitude: 0.8,
        };
        let arr = g.arrivals_with(&diurnal, 1.0e6, 10_000);
        assert!(arr.windows(2).all(|w| w[0].0 <= w[1].0));
        // First quarter-period (sin > 0, near peak) vs third (sin < 0).
        let peak = arr
            .iter()
            .filter(|(t, _, _)| (0.0..250.0).contains(&t.as_us_f64()))
            .count();
        let trough = arr
            .iter()
            .filter(|(t, _, _)| (500.0..750.0).contains(&t.as_us_f64()))
            .count();
        assert!(
            peak as f64 > 2.0 * trough as f64,
            "diurnal peak ({peak}) must out-arrive the trough ({trough})"
        );
    }

    #[test]
    fn markov_bursts_are_overdispersed() {
        let mut g = gen();
        let mmpp = ArrivalProcess::MarkovBurst {
            burst_factor: 8.0,
            mean_normal_us: 100.0,
            mean_burst_us: 100.0,
        };
        let arr = g.arrivals_with(&mmpp, 0.5e6, 20_000);
        assert!(arr.windows(2).all(|w| w[0].0 <= w[1].0));
        // Per-100µs-bucket arrival counts must vary far more than a plain
        // Poisson process's (whose index of dispersion is 1).
        let span_us = arr.last().unwrap().0.as_us_f64();
        let buckets = (span_us / 100.0).ceil() as usize;
        let mut counts = vec![0.0f64; buckets];
        for (t, _, _) in &arr {
            counts[((t.as_us_f64() / 100.0) as usize).min(buckets - 1)] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / buckets as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / buckets as f64;
        assert!(
            var / mean > 2.0,
            "MMPP must be overdispersed: index of dispersion {:.2}",
            var / mean
        );
    }

    #[test]
    fn process_traces_are_reproducible() {
        let crowd = ArrivalProcess::FlashCrowd {
            at_us: 100.0,
            factor: 3.0,
            duration_us: 50.0,
        };
        let a = gen().arrivals_with(&crowd, 1.0e6, 3_000);
        let b = gen().arrivals_with(&crowd, 1.0e6, 3_000);
        assert_eq!(a, b);
    }

    #[test]
    fn bad_process_parameters_are_typed_errors() {
        for p in [
            ArrivalProcess::Diurnal {
                period_us: 0.0,
                amplitude: 0.5,
            },
            ArrivalProcess::Diurnal {
                period_us: 100.0,
                amplitude: 1.0,
            },
            ArrivalProcess::FlashCrowd {
                at_us: -1.0,
                factor: 2.0,
                duration_us: 10.0,
            },
            ArrivalProcess::FlashCrowd {
                at_us: 0.0,
                factor: 0.5,
                duration_us: 10.0,
            },
            ArrivalProcess::MarkovBurst {
                burst_factor: 0.9,
                mean_normal_us: 10.0,
                mean_burst_us: 10.0,
            },
            ArrivalProcess::MarkovBurst {
                burst_factor: 2.0,
                mean_normal_us: 0.0,
                mean_burst_us: 10.0,
            },
        ] {
            assert!(
                matches!(p.validate(), Err(ConfigError::Workload { .. })),
                "{p:?} must be rejected"
            );
        }
        assert!(ArrivalProcess::Poisson.validate().is_ok());
    }
}
