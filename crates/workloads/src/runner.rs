//! One-call experiment drivers.
//!
//! Every figure harness boils down to: build a server for a (system,
//! machine, workload) triple, inject an open-loop Poisson load, run, and
//! read the report. [`RunSpec`] is that recipe as a value.

use jord_core::{RunReport, RuntimeConfig, SystemVariant, WorkerServer};
use jord_hw::MachineConfig;
use jord_nightcore::{NightCoreConfig, NightCoreServer};

use crate::apps::Workload;
use crate::loadgen::LoadGen;

/// The systems under test in §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// Jord (plain list, full isolation).
    Jord,
    /// Jord_NI (isolation bypassed).
    JordNi,
    /// Jord_BT (B-tree VMA table).
    JordBt,
    /// Enhanced NightCore (pipes).
    NightCore,
}

impl System {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            System::Jord => "Jord",
            System::JordNi => "Jord_NI",
            System::JordBt => "Jord_BT",
            System::NightCore => "NightCore",
        }
    }
}

/// One measured point of a load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Offered load in requests/second.
    pub rate_rps: f64,
    /// Measured p99 request latency in µs.
    pub p99_us: f64,
    /// Measured mean request latency in µs.
    pub mean_us: f64,
}

/// A complete experiment recipe.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// System under test.
    pub system: System,
    /// Hardware configuration.
    pub machine: MachineConfig,
    /// Offered load, requests/second.
    pub rate_rps: f64,
    /// Measured requests (after warm-up).
    pub requests: usize,
    /// Warm-up requests discarded from measurement.
    pub warmup: usize,
    /// Seed for both the load generator and the server.
    pub seed: u64,
    /// Orchestrator-count override (Figure 14 uses 1).
    pub orchestrators: Option<usize>,
}

impl RunSpec {
    /// A default-quality recipe: Table 2 machine, 20 k measured requests,
    /// 2 k warm-up.
    pub fn new(system: System, rate_rps: f64) -> Self {
        RunSpec {
            system,
            machine: MachineConfig::isca25(),
            rate_rps,
            requests: 20_000,
            warmup: 2_000,
            seed: 42,
            orchestrators: None,
        }
    }

    /// Overrides the machine.
    pub fn on(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Overrides the request counts.
    pub fn requests(mut self, measured: usize, warmup: usize) -> Self {
        self.requests = measured;
        self.warmup = warmup;
        self
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the orchestrator count.
    pub fn orchestrators(mut self, n: usize) -> Self {
        self.orchestrators = Some(n);
        self
    }

    /// Executes the recipe on `workload`.
    pub fn run(&self, workload: &Workload) -> RunReport {
        run_spec(self, workload)
    }
}

/// Executes a [`RunSpec`] (free-function form).
pub fn run_spec(spec: &RunSpec, workload: &Workload) -> RunReport {
    let mut gen = LoadGen::new(workload, spec.seed).expect("workload mix is sampleable");
    let arrivals = gen.arrivals(spec.rate_rps, spec.requests + spec.warmup);
    match spec.system {
        System::NightCore => {
            let mut cfg = NightCoreConfig::on(spec.machine.clone());
            cfg.seed = spec.seed;
            if let Some(n) = spec.orchestrators {
                cfg.orchestrators = n;
            }
            let mut server =
                NightCoreServer::new(cfg, workload.registry.clone()).expect("valid config");
            server.set_warmup(spec.warmup as u64);
            for (t, f, b) in arrivals {
                server.push_request(t, f, b);
            }
            server.run()
        }
        jord => {
            let variant = match jord {
                System::Jord => SystemVariant::Jord,
                System::JordNi => SystemVariant::JordNi,
                System::JordBt => SystemVariant::JordBt,
                System::NightCore => unreachable!(),
            };
            let mut cfg =
                RuntimeConfig::variant_on(variant, spec.machine.clone()).with_seed(spec.seed);
            if let Some(n) = spec.orchestrators {
                cfg = cfg.with_orchestrators(n);
            }
            let mut server =
                WorkerServer::new(cfg, workload.registry.clone()).expect("valid config");
            server.set_warmup(spec.warmup as u64);
            for (t, f, b) in arrivals {
                server.push_request(t, f, b);
            }
            server.run()
        }
    }
}

/// Convenience wrapper: run `system` on `workload` at `rate_rps` with the
/// default recipe and return the report.
pub fn run_system(system: System, workload: &Workload, rate_rps: f64) -> RunReport {
    RunSpec::new(system, rate_rps).run(workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::WorkloadKind;

    #[test]
    fn all_systems_run_the_hotel_workload() {
        let w = Workload::build(WorkloadKind::Hotel);
        for sys in [
            System::Jord,
            System::JordNi,
            System::JordBt,
            System::NightCore,
        ] {
            let rep = RunSpec::new(sys, 0.2e6).requests(500, 50).run(&w);
            assert_eq!(rep.completed, 500, "{} completes", sys.label());
            assert!(rep.p99().is_some());
        }
    }

    #[test]
    fn warmup_requests_are_excluded() {
        let w = Workload::build(WorkloadKind::Hipster);
        let rep = RunSpec::new(System::Jord, 0.2e6).requests(300, 100).run(&w);
        assert_eq!(rep.completed, 300);
        assert_eq!(rep.offered, 300, "offered counts measured requests only");
    }

    #[test]
    fn runs_are_reproducible() {
        let w = Workload::build(WorkloadKind::Hotel);
        let a = RunSpec::new(System::Jord, 0.5e6).requests(400, 50).run(&w);
        let b = RunSpec::new(System::Jord, 0.5e6).requests(400, 50).run(&w);
        assert_eq!(a.p99(), b.p99());
        assert_eq!(a.finished_at, b.finished_at);
    }
}
