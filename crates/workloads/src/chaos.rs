//! Chaos campaigns: fault-rate sweeps over a workload.
//!
//! The robustness counterpart of the §6 load sweeps: instead of raising
//! the offered load until the SLO breaks, a campaign raises the injected
//! fault rate and checks that the runtime **degrades gracefully** — every
//! request still ends Completed, Faulted, or Shed (none lost), goodput
//! falls smoothly instead of collapsing, and a drained server holds not
//! one PD, VMA, or invocation record more than it did before the storm.
//!
//! Each point re-runs the same seeded workload, so a campaign is exactly
//! reproducible; the containment invariants are asserted inside the
//! runner itself — a leak anywhere in the abort path fails the campaign,
//! not just a dedicated unit test.

use jord_core::{RecoveryPolicy, RuntimeConfig, SystemVariant, WorkerServer};
use jord_hw::{InjectConfig, MachineConfig};

use crate::apps::Workload;
use crate::loadgen::LoadGen;

/// One measured point of a fault-rate sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPoint {
    /// Per-invocation-op fault probability injected at this point.
    pub fault_rate: f64,
    /// Measured external requests.
    pub offered: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests terminally failed (retries exhausted).
    pub failed: u64,
    /// Requests shed at admission.
    pub sheds: u64,
    /// Hardware faults raised across the run.
    pub faults: u64,
    /// Invocations aborted (faults, timeouts, failed children).
    pub aborted: u64,
    /// Re-dispatches after failure.
    pub retries: u64,
    /// Goodput: completed / offered.
    pub goodput: f64,
    /// p99 request latency in µs of the completing requests (0 if none).
    pub p99_us: f64,
}

/// A chaos-campaign recipe: one workload, one system variant, a ladder of
/// fault rates.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// Jord variant under test (chaos targets the Jord runtimes; NightCore
    /// has no Jord protection hardware to misbehave against).
    pub variant: SystemVariant,
    /// Hardware configuration.
    pub machine: MachineConfig,
    /// Offered load, requests/second.
    pub rate_rps: f64,
    /// Measured requests per point.
    pub requests: usize,
    /// Warm-up requests discarded from measurement.
    pub warmup: usize,
    /// Seed shared by the load generator and every server.
    pub seed: u64,
    /// The fault-rate ladder (a clean 0.0 baseline is always prepended).
    pub fault_rates: Vec<f64>,
    /// Recovery policy applied at every point.
    pub recovery: RecoveryPolicy,
}

impl ChaosSpec {
    /// A default campaign: Jord on the Table 2 machine, 2 k measured
    /// requests per point, sweeping 1e-4 → 1e-2.
    pub fn new(rate_rps: f64) -> Self {
        ChaosSpec {
            variant: SystemVariant::Jord,
            machine: MachineConfig::isca25(),
            rate_rps,
            requests: 2_000,
            warmup: 200,
            seed: 42,
            fault_rates: vec![1e-4, 1e-3, 1e-2],
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Overrides the fault-rate ladder.
    pub fn rates(mut self, rates: Vec<f64>) -> Self {
        self.fault_rates = rates;
        self
    }

    /// Overrides the recovery policy.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Overrides the per-point request counts.
    pub fn requests(mut self, measured: usize, warmup: usize) -> Self {
        self.requests = measured;
        self.warmup = warmup;
        self
    }

    /// Runs the campaign on `workload`.
    ///
    /// # Panics
    ///
    /// Panics if any point violates containment: a lost request
    /// (`offered != completed + failed + sheds`) or a leaked invocation,
    /// VMA, or PD after the run drains.
    pub fn run(&self, workload: &Workload) -> ChaosReport {
        let mut points = Vec::with_capacity(self.fault_rates.len() + 1);
        points.push(self.run_point(workload, 0.0));
        for &rate in &self.fault_rates {
            points.push(self.run_point(workload, rate));
        }
        ChaosReport { points }
    }

    fn run_point(&self, workload: &Workload, fault_rate: f64) -> ChaosPoint {
        let mut cfg = RuntimeConfig::variant_on(self.variant, self.machine.clone())
            .with_seed(self.seed)
            .with_recovery(self.recovery);
        if fault_rate > 0.0 {
            cfg = cfg.with_inject(InjectConfig::faults(fault_rate));
        }
        let mut server =
            WorkerServer::new(cfg, workload.registry.clone()).expect("valid chaos config");
        let baseline_vmas = server.privlib().live_vmas();
        let baseline_pds = server.privlib().live_pds();
        server.set_warmup(self.warmup as u64);
        let mut gen = LoadGen::new(workload, self.seed).expect("workload mix is sampleable");
        for (t, f, b) in gen.arrivals(self.rate_rps, self.requests + self.warmup) {
            server.push_request(t, f, b);
        }
        let rep = server.run();

        // Containment invariants, checked at every point of every campaign.
        assert_eq!(
            rep.offered,
            rep.completed + rep.faults.failed + rep.faults.sheds,
            "rate {fault_rate}: requests lost"
        );
        assert_eq!(
            server.live_invocations(),
            0,
            "rate {fault_rate}: invocation records leaked"
        );
        assert_eq!(
            server.privlib().live_vmas(),
            baseline_vmas,
            "rate {fault_rate}: VMAs leaked"
        );
        assert_eq!(
            server.privlib().live_pds(),
            baseline_pds,
            "rate {fault_rate}: PDs leaked"
        );

        ChaosPoint {
            fault_rate,
            offered: rep.offered,
            completed: rep.completed,
            failed: rep.faults.failed,
            sheds: rep.faults.sheds,
            faults: rep.faults.total_faults(),
            aborted: rep.faults.aborted,
            retries: rep.faults.retries,
            goodput: rep.goodput(),
            p99_us: rep.p99().map(|d| d.as_us_f64()).unwrap_or(0.0),
        }
    }
}

/// The outcome of a chaos campaign: the clean baseline followed by one
/// point per swept fault rate, in ladder order.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Points in sweep order; `points[0]` is the clean baseline.
    pub points: Vec<ChaosPoint>,
}

impl ChaosReport {
    /// The clean (no-injection) baseline point.
    pub fn baseline(&self) -> &ChaosPoint {
        &self.points[0]
    }

    /// True when degradation is graceful: the clean baseline loses
    /// nothing, goodput never falls below `floor` at any swept rate, and
    /// no point loses more goodput than `tolerance` relative to the next
    /// lower rate (no cliff).
    pub fn degrades_gracefully(&self, floor: f64, tolerance: f64) -> bool {
        let base = self.baseline();
        if base.goodput < 1.0 || base.faults != 0 {
            return false;
        }
        self.points.iter().all(|p| p.goodput >= floor)
            && self
                .points
                .windows(2)
                .all(|w| w[0].goodput - w[1].goodput <= tolerance + f64::EPSILON)
    }

    /// Formats the campaign as an aligned text table (figure-style output).
    pub fn table(&self) -> String {
        let mut out = String::from(
            "fault_rate    offered  completed     failed      sheds     faults    retries  goodput    p99_us\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}   {:.4} {:>9.1}\n",
                format!("{:.0e}", p.fault_rate),
                p.offered,
                p.completed,
                p.failed,
                p.sheds,
                p.faults,
                p.retries,
                p.goodput,
                p.p99_us,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::WorkloadKind;

    fn quick_spec() -> ChaosSpec {
        ChaosSpec::new(0.2e6)
            .requests(400, 50)
            .rates(vec![1e-3, 2e-2])
    }

    #[test]
    fn campaign_degrades_gracefully_and_contains_faults() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = quick_spec().run(&w);
        assert_eq!(rep.points.len(), 3);
        assert_eq!(rep.baseline().goodput, 1.0);
        assert_eq!(rep.baseline().faults, 0);
        // The heavy point must actually exercise the machinery…
        let heavy = rep.points.last().unwrap();
        assert!(heavy.faults > 0, "2e-2 must raise faults: {heavy:?}");
        assert!(heavy.retries > 0, "default policy retries failures");
        // …and degradation stays smooth (run_point already asserted the
        // containment invariants at every rung).
        assert!(
            rep.degrades_gracefully(0.9, 0.1),
            "goodput ladder: {:?}",
            rep.points.iter().map(|p| p.goodput).collect::<Vec<_>>()
        );
    }

    #[test]
    fn campaigns_are_reproducible() {
        let w = Workload::build(WorkloadKind::Hotel);
        let a = quick_spec().run(&w);
        let b = quick_spec().run(&w);
        assert_eq!(a, b, "same seed must reproduce the whole campaign");
    }

    #[test]
    fn goodput_falls_below_throughput_under_heavy_injection() {
        let w = Workload::build(WorkloadKind::Hotel);
        let spec = quick_spec().rates(vec![5e-2]).recovery(RecoveryPolicy {
            max_retries: 0,
            ..RecoveryPolicy::default()
        });
        let rep = spec.run(&w);
        let heavy = rep.points.last().unwrap();
        assert!(
            heavy.completed < heavy.offered,
            "5% with no retries must lose requests: {heavy:?}"
        );
        assert!(heavy.failed > 0);
        assert!(heavy.goodput < 1.0);
    }

    #[test]
    fn table_lists_every_point() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = ChaosSpec::new(0.2e6)
            .requests(100, 20)
            .rates(vec![1e-2])
            .run(&w);
        let table = rep.table();
        assert_eq!(table.lines().count(), 1 + rep.points.len());
        assert!(table.contains("goodput"));
    }

    /// A synthetic report with the given goodput ladder (baseline first);
    /// every other field is benign.
    fn ladder(goodputs: &[f64]) -> ChaosReport {
        let points = goodputs
            .iter()
            .enumerate()
            .map(|(i, &g)| ChaosPoint {
                fault_rate: i as f64 * 1e-3,
                offered: 1_000,
                completed: (1_000.0 * g) as u64,
                failed: 1_000 - (1_000.0 * g) as u64,
                sheds: 0,
                faults: if i == 0 { 0 } else { 10 },
                aborted: 0,
                retries: 0,
                goodput: g,
                p99_us: 25.0,
            })
            .collect();
        ChaosReport { points }
    }

    #[test]
    fn graceful_degradation_enforces_the_floor_exactly() {
        // A point sitting exactly on the floor passes; a hair below fails.
        assert!(ladder(&[1.0, 0.95, 0.90]).degrades_gracefully(0.90, 0.1));
        assert!(!ladder(&[1.0, 0.95, 0.8999]).degrades_gracefully(0.90, 0.1));
    }

    #[test]
    fn graceful_degradation_enforces_the_cliff_tolerance() {
        // Total drop is within the floor, but one step exceeds tolerance.
        assert!(ladder(&[1.0, 0.98, 0.96]).degrades_gracefully(0.9, 0.02));
        assert!(!ladder(&[1.0, 0.98, 0.93]).degrades_gracefully(0.9, 0.02));
        // A drop exactly equal to the tolerance is not a cliff.
        assert!(ladder(&[1.0, 0.95]).degrades_gracefully(0.9, 0.05));
    }

    #[test]
    fn graceful_degradation_requires_a_clean_baseline() {
        // A lossy baseline fails even when every swept point is perfect.
        let mut rep = ladder(&[0.999, 1.0, 1.0]);
        assert!(!rep.degrades_gracefully(0.5, 1.0));
        // So does a baseline that saw faults despite completing everything.
        rep = ladder(&[1.0, 1.0]);
        rep.points[0].faults = 1;
        assert!(!rep.degrades_gracefully(0.5, 1.0));
    }

    #[test]
    fn goodput_recovery_between_rungs_is_not_a_cliff() {
        // windows(2) checks drops, not rises: a rung that recovers goodput
        // relative to its predecessor must never trip the tolerance.
        assert!(ladder(&[1.0, 0.92, 0.98, 0.95]).degrades_gracefully(0.9, 0.08));
    }

    #[test]
    fn synthetic_table_formats_every_rung() {
        let rep = ladder(&[1.0, 0.97]);
        let table = rep.table();
        assert_eq!(table.lines().count(), 3);
        assert!(table.starts_with("fault_rate"));
        assert!(table.contains("0e0"), "baseline rate renders in e-notation");
    }

    #[test]
    fn empty_rate_ladder_still_runs_the_baseline() {
        let w = Workload::build(WorkloadKind::Hotel);
        let rep = ChaosSpec::new(0.2e6)
            .requests(100, 20)
            .rates(vec![])
            .run(&w);
        assert_eq!(rep.points.len(), 1, "baseline is always prepended");
        assert_eq!(rep.baseline().goodput, 1.0);
        assert!(
            rep.degrades_gracefully(0.99, 0.0),
            "a lone clean baseline degrades trivially gracefully"
        );
    }
}
