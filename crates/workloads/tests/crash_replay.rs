//! Property-based crash-recovery determinism: for ANY crash point, crash
//! scope, checkpoint cadence, workload shape, and seed, an at-least-once
//! recovery must converge to EXACTLY the totals of the same seeded run
//! with no crash — same completed count, a balanced request ledger, and
//! every allocator watermark back at its pre-run baseline.
//!
//! This is the write-ahead journal run adversarially: if replay ever
//! loses, duplicates, or fabricates a request — at any crash instant,
//! including mid-recovery checkpoints and crashes that land after the
//! drain — some schedule in this space finds it.

use proptest::prelude::*;

use jord_core::{
    CrashConfig, CrashSemantics, FuncOp, FunctionRegistry, FunctionSpec, RecoveryPolicy, RunReport,
    RuntimeConfig, WorkerServer,
};
use jord_hw::{CrashPlan, CrashScope};
use jord_sim::{SimTime, TimeDist};

/// One randomly shaped crash scenario.
#[derive(Debug, Clone)]
struct Scenario {
    /// Crash instant as a fraction of the arrival span (can land past it).
    crash_frac: f64,
    scope: CrashScope,
    checkpoint_every: usize,
    /// Nested sync calls per root request.
    calls: u8,
    requests: u16,
    spacing_ns: u64,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            0.0f64..1.5,
            prop_oneof![
                Just(CrashScope::Worker),
                (0usize..28).prop_map(CrashScope::Executor),
                (0usize..4).prop_map(CrashScope::Orchestrator),
            ],
            1usize..256,
        ),
        (0u8..3, 50u16..400, 0u64..500, 0u64..10_000),
    )
        .prop_map(
            |((crash_frac, scope, checkpoint_every), (calls, requests, spacing_ns, seed))| {
                Scenario {
                    crash_frac,
                    scope,
                    checkpoint_every,
                    calls,
                    requests,
                    spacing_ns,
                    seed,
                }
            },
        )
}

fn registry_for(calls: u8) -> (FunctionRegistry, jord_core::FunctionId) {
    let mut r = FunctionRegistry::new();
    let leaf = r.register(
        FunctionSpec::new("leaf")
            .op(FuncOp::ReadInput)
            .op(FuncOp::Compute(TimeDist::fixed(800.0)))
            .op(FuncOp::WriteOutput),
    );
    let mut root = FunctionSpec::new("root").op(FuncOp::ReadInput);
    for _ in 0..calls {
        root = root.call(leaf, 96);
    }
    root = root
        .op(FuncOp::Compute(TimeDist::fixed(500.0)))
        .op(FuncOp::WriteOutput);
    let root = r.register(root);
    (r, root)
}

/// Runs one seeded server to completion and asserts leak-freedom: the
/// drained server holds exactly its pre-run VMA/PD/invocation watermarks.
fn run_one(s: &Scenario, crash: Option<CrashConfig>) -> RunReport {
    let mut cfg = RuntimeConfig::jord_32()
        .with_seed(s.seed)
        .with_recovery(RecoveryPolicy {
            max_retries: 5,
            ..RecoveryPolicy::default()
        });
    if let Some(c) = crash {
        cfg = cfg.with_crash(c);
    }
    let (r, root) = registry_for(s.calls);
    let mut server = WorkerServer::new(cfg, r).expect("valid config");
    let vmas = server.privlib().live_vmas();
    let pds = server.privlib().live_pds();
    for i in 0..s.requests as u64 {
        server.push_request(SimTime::from_ns(i * s.spacing_ns), root, 128);
    }
    let rep = server.run();
    assert_eq!(server.live_invocations(), 0, "invocation records leaked");
    assert_eq!(server.privlib().live_vmas(), vmas, "VMAs leaked");
    assert_eq!(server.privlib().live_pds(), pds, "PDs leaked");
    rep
}

proptest! {
    // Each case runs two full servers; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At-least-once recovery is invisible in the totals: the crashed run
    /// completes exactly what the crash-free run completes, loses nothing,
    /// and leaks nothing.
    #[test]
    fn at_least_once_replay_matches_the_crash_free_run(s in arb_scenario()) {
        let base = run_one(&s, None);
        prop_assert_eq!(base.completed, s.requests as u64);

        let span_us = (s.requests as u64 * s.spacing_ns) as f64 / 1_000.0;
        let crash = CrashConfig::new(
            CrashPlan { at_us: span_us * s.crash_frac, scope: s.scope },
            CrashSemantics::AtLeastOnce,
        )
        .checkpoint_every(s.checkpoint_every);
        let rep = run_one(&s, Some(crash));

        // The ledger balances across the crash boundary…
        prop_assert_eq!(
            rep.offered,
            rep.completed + rep.faults.failed + rep.faults.sheds,
            "requests lost: {:?}", rep.crash
        );
        // …and replay converges to the crash-free totals.
        prop_assert_eq!(
            rep.completed, base.completed,
            "at-least-once must complete exactly the baseline count \
             (crash: {:?}, readmitted {})", rep.crash, rep.crash.readmitted
        );
        prop_assert_eq!(rep.faults.failed, 0);
    }
}
