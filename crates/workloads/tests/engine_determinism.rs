//! Engine-level golden determinism: a full autoscale campaign run —
//! cluster dispatch, hedged routing, autoscaler windows, failover ledger —
//! must be bit-identical to the schedule recorded under the pre-refactor
//! binary-heap event queue.
//!
//! The constants below were captured *before* the slab-backed calendar
//! queue replaced the heap in `jord-sim`. They pin three independent
//! observables of the same run: the whole-stream FNV-1a lifecycle trace
//! hash, an FNV-1a digest over the debug rendering of every autoscaler
//! [`WindowRecord`], and the aggregate counters. A queue implementation is
//! only admissible if all three collide exactly — "same results, faster"
//! is the contract, and this test is the contract's teeth.

use jord_workloads::{AutoscaleCampaign, Workload, WorkloadKind};

/// Recorded under the BinaryHeap queue (commit lineage: PR 6 autoscaler,
/// pre-calendar-queue engine).
const PINNED_TRACE_HASH: u64 = 0x6dc108d71b0890cb;
const PINNED_WINDOW_DIGEST: u64 = 0x80300dcf4f0511fa;
const PINNED_WINDOWS: usize = 22;
const PINNED_COMPLETED: u64 = 1_500;

fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn autoscale_campaign_schedule_is_pinned_across_queue_rebuilds() {
    let hotel = Workload::build(WorkloadKind::Hotel);
    let campaign = AutoscaleCampaign::new(1.5e6, 1_500).seed(42);
    let (rep, windows) = campaign.run_cluster(&hotel, &campaign.crowd, true, |_, _| {});

    assert_eq!(rep.offered, 1_500);
    assert_eq!(rep.completed, PINNED_COMPLETED);
    assert_eq!(windows.len(), PINNED_WINDOWS);
    assert_eq!(
        rep.trace_hash, PINNED_TRACE_HASH,
        "lifecycle trace hash drifted: the cluster event schedule changed"
    );
    let digest = fnv1a(windows.iter().flat_map(|w| format!("{w:?}").into_bytes()));
    assert_eq!(
        digest, PINNED_WINDOW_DIGEST,
        "autoscaler window digest drifted: scaling decisions changed"
    );
}

#[test]
fn autoscale_campaign_is_reproducible_within_a_process() {
    // Run-twice bit-identity: the trace hash is a function of the seed
    // alone, not of allocator state or queue geometry warm-up.
    let hotel = Workload::build(WorkloadKind::Hotel);
    let campaign = AutoscaleCampaign::new(1.5e6, 800).seed(7);
    let (a, wa) = campaign.run_cluster(&hotel, &campaign.crowd, true, |_, _| {});
    let (b, wb) = campaign.run_cluster(&hotel, &campaign.crowd, true, |_, _| {});
    assert_eq!(a.trace_hash, b.trace_hash);
    assert_eq!(a.completed, b.completed);
    assert_eq!(wa.len(), wb.len());
    let da = fnv1a(wa.iter().flat_map(|w| format!("{w:?}").into_bytes()));
    let db = fnv1a(wb.iter().flat_map(|w| format!("{w:?}").into_bytes()));
    assert_eq!(da, db, "two identically-seeded runs must be bit-identical");
}
