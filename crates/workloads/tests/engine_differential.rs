//! The parallel engine's contract, run adversarially: for ANY fleet
//! size, incident schedule, load, seed, and thread count, the
//! conservative engine must reproduce the sequential engine
//! bit-for-bit — same fleet trace hash, same ledger, same finish time,
//! same autoscaler decision sequence.
//!
//! The proptest sweeps randomized scenarios (optionally with a
//! mid-run kill and hedged dispatch — the hardest case, because a
//! hedge pullback is the one dispatcher action that reaches into two
//! shards at once) through 1/2/4/8 threads. Two campaign-level tests
//! then pin the named hard cases: the autoscaler's scale+kill race
//! (a crash landing mid-run while the fleet is growing and draining)
//! and the failover campaign's kill+hedge point.

use proptest::prelude::*;

use jord_core::{
    ClusterConfig, ClusterDispatcher, ClusterReport, EngineConfig, HedgeConfig, RuntimeConfig,
    SystemVariant, WorkerKill,
};
use jord_hw::MachineConfig;
use jord_workloads::{AutoscaleCampaign, FailoverCampaign, LoadGen, Workload, WorkloadKind};

/// One randomly shaped cluster scenario.
#[derive(Debug, Clone)]
struct Scenario {
    workers: usize,
    rate_rps: f64,
    requests: u16,
    seed: u64,
    /// Kill this worker at this fraction of the arrival span, if any.
    kill: Option<(usize, f64)>,
    /// Hedge trigger, µs, if any.
    hedge_after_us: Option<f64>,
    heartbeat_loss_rate: f64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        (2usize..5, 0.5f64..3.0, 150u16..400, 0u64..10_000),
        (any::<bool>(), 0usize..4, 0.2f64..0.7),
        (any::<bool>(), 2.0f64..12.0),
        0.0f64..0.08,
    )
        .prop_map(
            |(
                (workers, rate_mrps, requests, seed),
                (kill_on, kill_w, kill_frac),
                (hedge_on, hedge_us),
                loss,
            )| Scenario {
                workers,
                rate_rps: rate_mrps * 1e6,
                requests,
                seed,
                kill: kill_on.then_some((kill_w % workers, kill_frac)),
                hedge_after_us: hedge_on.then_some(hedge_us),
                heartbeat_loss_rate: loss,
            },
        )
}

fn run_scenario(s: &Scenario, engine: Option<EngineConfig>) -> ClusterReport {
    let template =
        RuntimeConfig::variant_on(SystemVariant::Jord, MachineConfig::isca25()).with_seed(s.seed);
    let mut cfg = ClusterConfig::new(s.workers, s.seed, template);
    cfg.engine = engine;
    cfg.heartbeat_loss_rate = s.heartbeat_loss_rate;
    let span_us = s.requests as f64 / s.rate_rps * 1e6;
    if let Some((worker, frac)) = s.kill {
        cfg.kill = Some(WorkerKill {
            worker,
            at_us: span_us * frac,
        });
    }
    if let Some(after_us) = s.hedge_after_us {
        cfg.hedge = Some(HedgeConfig { after_us });
    }
    let workload = Workload::build(WorkloadKind::Hotel);
    let mut cluster =
        ClusterDispatcher::new(cfg, workload.registry.clone()).expect("valid cluster config");
    let mut gen = LoadGen::new(&workload, s.seed).expect("workload mix is sampleable");
    for (t, f, b) in gen.arrivals(s.rate_rps, s.requests as usize) {
        cluster.push_request(t, f, b);
    }
    cluster.run()
}

/// Every observable the two engines could disagree on.
fn assert_reports_match(oracle: &ClusterReport, rep: &ClusterReport, label: &str) {
    assert_eq!(rep.trace_hash, oracle.trace_hash, "{label}: trace hash");
    assert_eq!(rep.offered, oracle.offered, "{label}: offered");
    assert_eq!(rep.completed, oracle.completed, "{label}: completed");
    assert_eq!(rep.failed, oracle.failed, "{label}: failed");
    assert_eq!(rep.shed, oracle.shed, "{label}: shed");
    assert_eq!(rep.failover, oracle.failover, "{label}: failover stats");
    assert_eq!(rep.autoscale, oracle.autoscale, "{label}: autoscale stats");
    assert_eq!(rep.windows, oracle.windows, "{label}: window records");
    assert_eq!(rep.finished_at, oracle.finished_at, "{label}: finish time");
    assert_eq!(rep.p99(), oracle.p99(), "{label}: p99");
    assert_eq!(
        rep.probe.scheduled, oracle.probe.scheduled,
        "{label}: events scheduled"
    );
    assert_eq!(
        rep.probe.cancelled, oracle.probe.cancelled,
        "{label}: events cancelled"
    );
}

proptest! {
    // Each case runs the same cluster five times (oracle + four thread
    // counts); keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// ANY scenario — kills, hedges, lossy heartbeats — reproduces the
    /// sequential oracle bit-for-bit at every thread count.
    #[test]
    fn parallel_engine_matches_oracle_everywhere(s in arb_scenario()) {
        let oracle = run_scenario(&s, None);
        for threads in [1usize, 2, 4, 8] {
            let rep = run_scenario(&s, Some(EngineConfig::threads(threads)));
            assert_reports_match(&oracle, &rep, &format!("{threads} threads"));
        }
    }
}

/// The scale+kill race — the autoscaler growing and draining the fleet
/// while a crash lands mid-run — replays bit-identically on the
/// parallel engine: same point (trace hash included) and the same
/// autoscaler decision sequence, window by window.
#[test]
fn crash_mid_scale_matches_oracle_on_every_thread_count() {
    let w = Workload::build(WorkloadKind::Hotel);
    let c = AutoscaleCampaign::new(2.0e6, 4_000);
    let script = |cfg: &mut ClusterConfig, c: &AutoscaleCampaign| {
        cfg.kill = Some(WorkerKill {
            worker: c.victim,
            at_us: c.kill_at_us,
        });
    };
    let (oracle, win_oracle) = c.run_cluster(&w, &c.crowd, true, script);
    for threads in [2usize, 4] {
        let pc = c.clone().engine(EngineConfig::threads(threads));
        let (rep, windows) = pc.run_cluster(&w, &pc.crowd, true, script);
        assert_reports_match(&oracle, &rep, &format!("scale+kill @ {threads} threads"));
        assert_eq!(
            windows, win_oracle,
            "decision sequences @ {threads} threads"
        );
    }
}

/// The kill+hedge point — hedged copies racing a dead worker's
/// detection window, with pullbacks cancelling the loser — is the
/// hardest case for the lookahead contract; it must still match the
/// oracle exactly.
#[test]
fn hedged_pullbacks_match_oracle_on_every_thread_count() {
    let w = Workload::build(WorkloadKind::Hotel);
    let c = FailoverCampaign::new(4.0e6, 2_000);
    let script = |c: &FailoverCampaign| {
        let kill = WorkerKill {
            worker: c.victim,
            at_us: c.kill_at_us,
        };
        let hedge = HedgeConfig {
            after_us: c.hedge_after_us,
        };
        move |cfg: &mut ClusterConfig| {
            cfg.kill = Some(kill);
            cfg.hedge = Some(hedge);
        }
    };
    let oracle = c.run_point(&w, "kill+hedge", script(&c));
    assert!(oracle.hedges > 0, "the point must actually hedge");
    for threads in [2usize, 8] {
        let pc = c.clone().engine(EngineConfig::threads(threads));
        let point = pc.run_point(&w, "kill+hedge", script(&pc));
        assert_eq!(point, oracle, "kill+hedge @ {threads} threads");
    }
}
