//! Drain-aware rebalancing run adversarially: for ANY fleet size, drain
//! schedule, load, and seed, retiring N workers back to back must conserve
//! every request — the ledger balances, nothing is lost, and nothing
//! terminally fails, because a drain (unlike a crash) hands its queue and
//! in-flight work to the survivors before the worker goes away.
//!
//! A companion golden-trace test pins the harder schedule — autoscaler
//! scale events racing a mid-crowd kill of a worker the autoscaler itself
//! spawned — and asserts the whole run replays bit-identically: same
//! [`WindowRecord`] sequence, same fleet trace hash, zero lost.

use proptest::prelude::*;

use jord_core::{
    ClusterConfig, ClusterDispatcher, ClusterReport, DrainPlan, RuntimeConfig, SystemVariant,
    WorkerKill,
};
use jord_hw::MachineConfig;
use jord_workloads::{AutoscaleCampaign, LoadGen, Workload, WorkloadKind};

/// One randomly shaped consecutive-removal schedule.
#[derive(Debug, Clone)]
struct Removals {
    /// Initial fleet size.
    workers: usize,
    /// How many workers the schedule drains (always leaves one).
    drained: usize,
    /// First drain instant as a fraction of the arrival span.
    start_frac: f64,
    /// Gap between consecutive drains, µs.
    spacing_us: f64,
    rate_rps: f64,
    requests: u16,
    seed: u64,
}

fn arb_removals() -> impl Strategy<Value = Removals> {
    (
        (2usize..6, 0.0f64..1.0),
        (0.05f64..0.9, 1.0f64..60.0, 0.5f64..3.0),
        (150u16..500, 0u64..10_000),
    )
        .prop_map(
            |((workers, drain_frac), (start_frac, spacing_us, rate_mrps), (requests, seed))| {
                // 1..workers drains: always retire at least one worker and
                // always leave at least one alive.
                let drained = 1 + (drain_frac * (workers - 1) as f64) as usize;
                Removals {
                    workers,
                    drained: drained.min(workers - 1),
                    start_frac,
                    spacing_us,
                    rate_rps: rate_mrps * 1e6,
                    requests,
                    seed,
                }
            },
        )
}

fn run_removals(s: &Removals) -> ClusterReport {
    let template =
        RuntimeConfig::variant_on(SystemVariant::Jord, MachineConfig::isca25()).with_seed(s.seed);
    let mut cfg = ClusterConfig::new(s.workers, s.seed, template);
    let span_us = s.requests as f64 / s.rate_rps * 1e6;
    // Retire the highest-index workers one after another — the same order
    // the autoscaler's retire_candidates walks — leaving worker 0 alive.
    cfg.drains = (0..s.drained)
        .map(|i| DrainPlan {
            worker: s.workers - 1 - i,
            at_us: span_us * s.start_frac + i as f64 * s.spacing_us,
            resume_at_us: None,
        })
        .collect();
    let workload = Workload::build(WorkloadKind::Hotel);
    let mut cluster =
        ClusterDispatcher::new(cfg, workload.registry.clone()).expect("valid cluster config");
    let mut gen = LoadGen::new(&workload, s.seed).expect("workload mix is sampleable");
    for (t, f, b) in gen.arrivals(s.rate_rps, s.requests as usize) {
        cluster.push_request(t, f, b);
    }
    cluster.run()
}

proptest! {
    // Each case runs a whole multi-worker cluster; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N consecutive drain-aware removals conserve every request: the
    /// ledger balances with zero lost, and — because a drain migrates its
    /// work instead of dropping it — zero terminal failures too.
    #[test]
    fn consecutive_removals_conserve_every_request(s in arb_removals()) {
        let rep = run_removals(&s);
        prop_assert_eq!(rep.offered, s.requests as u64);
        prop_assert_eq!(
            rep.offered,
            rep.completed + rep.failed + rep.shed,
            "ledger must balance across {} removals (report: completed {} failed {} shed {})",
            s.drained, rep.completed, rep.failed, rep.shed
        );
        prop_assert_eq!(rep.failover.lost, 0, "drains must never lose work");
        prop_assert_eq!(
            rep.failed, 0,
            "a graceful drain migrates in-flight work; nothing may terminally fail"
        );
        // No double-completion: every request completes at most once.
        prop_assert!(rep.completed <= rep.offered);
    }

    /// Removal schedules replay exactly: the same seed reproduces the
    /// identical fleet trace hash and totals.
    #[test]
    fn removal_schedules_are_deterministic(s in arb_removals()) {
        let a = run_removals(&s);
        let b = run_removals(&s);
        prop_assert_eq!(a.trace_hash, b.trace_hash);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.finished_at, b.finished_at);
    }
}

/// Golden trace: the autoscaled flash-crowd run with a kill landing on a
/// worker the autoscaler spawned (slot 2 only exists after the crowd
/// provokes a scale-up) replays decision-for-decision — identical window
/// sequence, identical trace hash — and the crash still loses nothing.
#[test]
fn scale_events_racing_a_crash_replay_identically() {
    let w = Workload::build(WorkloadKind::Hotel);
    let c = AutoscaleCampaign::new(2.0e6, 4_000);
    // Span is 2000 µs; the crowd steps at 500 µs and the scale-up lands
    // ~540 µs, spawning slots past the initial two. Kill one of those.
    let script = |cfg: &mut ClusterConfig, _: &AutoscaleCampaign| {
        cfg.kill = Some(WorkerKill {
            worker: 2,
            at_us: 600.0,
        });
    };
    let (rep_a, win_a) = c.run_cluster(&w, &c.crowd, true, script);
    let (rep_b, win_b) = c.run_cluster(&w, &c.crowd, true, script);

    assert!(
        rep_a.autoscale.scale_ups >= 1,
        "the crowd must scale the fleet up"
    );
    assert!(
        rep_a.failover.evictions >= 1,
        "the kill must land on the spawned slot and be convicted"
    );
    assert_eq!(rep_a.failover.lost, 0, "the race must lose nothing");
    assert_eq!(
        rep_a.offered,
        rep_a.completed + rep_a.failed + rep_a.shed,
        "ledger must balance through the race"
    );

    assert!(!win_a.is_empty(), "autoscaled runs must record windows");
    assert_eq!(win_a, win_b, "decision sequences must replay exactly");
    assert_eq!(
        rep_a.trace_hash, rep_b.trace_hash,
        "fleet traces must match"
    );
    assert_eq!(rep_a.autoscale, rep_b.autoscale);
}
