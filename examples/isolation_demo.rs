//! The isolation mechanism up close: PDs, permission transfers, VLB
//! shootdowns, and the threat model of §3.1 — driven directly through
//! PrivLib on the simulated hardware.
//!
//! Run with: `cargo run --release --example isolation_demo`

use jord::prelude::*;
use jord::privlib::os;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::new(MachineConfig::isca25());
    let mut privlib = os::boot(&mut machine, TableChoice::PlainList)?;
    let core = CoreId(1);

    // Two tenants, one address space.
    let (alice, c1) = privlib.cget(&mut machine, core)?;
    let (bob, c2) = privlib.cget(&mut machine, core)?;
    println!("created {alice:?} ({c1}) and {bob:?} ({c2}) — nanosecond-scale cget");

    // Alice allocates a buffer; the VMA lands in her PD only.
    let (buf, c) = privlib.mmap(&mut machine, core, 4096, Perm::RW, alice)?;
    println!("alice mmap(4096) -> {buf:#x} in {c}");

    // Alice can use it; Bob faults, exactly as §3.1 requires.
    privlib.access(&mut machine, core, alice, buf, Perm::RW)?;
    match privlib.access(&mut machine, core, bob, buf, Perm::READ) {
        Err(PrivError::Fault(fault)) => println!("bob's forged access -> {fault}"),
        other => panic!("isolation hole! {other:?}"),
    }

    // Zero-copy handoff: one VTE write moves the permission to Bob.
    let c = privlib.pmove(&mut machine, core, buf, alice, bob, Perm::RW)?;
    println!("pmove(alice -> bob) in {c} — the buffer's bytes never moved");
    privlib.access(&mut machine, core, bob, buf, Perm::RW)?;
    match privlib.access(&mut machine, core, alice, buf, Perm::READ) {
        Err(PrivError::Fault(fault)) => println!("alice's stale access -> {fault}"),
        other => panic!("revocation failed! {other:?}"),
    }

    // Cross-core revocation: a remote core warms its VLB, then loses the
    // translation through the hardware VTD shootdown.
    let remote = CoreId(30);
    privlib.access(&mut machine, remote, bob, buf, Perm::READ)?;
    let c = privlib.pmove(&mut machine, core, buf, bob, alice, Perm::RW)?;
    println!("pmove back from {core} while {remote} cached the translation: {c}");
    match privlib.access(&mut machine, remote, bob, buf, Perm::READ) {
        Err(PrivError::Fault(fault)) => {
            println!("{remote}'s VLB was shot down in hardware -> {fault}")
        }
        other => panic!("stale remote translation! {other:?}"),
    }

    // PrivLib itself is unreachable except through uatg call gates.
    match privlib.try_enter(&machine, core, false) {
        Err(PrivError::Fault(fault)) => println!("gateless PrivLib entry -> {fault}"),
        other => panic!("call gate bypassed! {other:?}"),
    }
    let (_gate, c) = privlib.try_enter(&machine, core, true)?;
    println!("gated entry with mandatory policy checks costs {c}");

    // Tear down.
    privlib.munmap(&mut machine, core, buf, alice)?;
    privlib.cput(&mut machine, core, alice)?;
    privlib.cput(&mut machine, core, bob)?;
    let s = machine.stats();
    println!(
        "\nhardware counters: {} VTD shootdown(s), D-VLB {} hits / {} misses",
        s.dvlb.shootdowns, s.dvlb.hits, s.dvlb.misses
    );
    Ok(())
}
