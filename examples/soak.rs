//! A week of diurnal traffic against the memory governor (see README
//! "Memory governor").
//!
//! Runs the seeded soak campaign over the Hotel workload: seven diurnal
//! periods with warm-pool idle eviction, the memory-pressure ladder, and
//! VMA-table compaction engaged. The campaign asserts the long-haul
//! residency contract — both ledgers balanced (`offered == completed +
//! failed + shed` and `mapped == resident + reclaimed`), fleet residency
//! bounded by `peak_workers x budget` in every window, no day-over-day
//! residency growth, stable tails, bit-identical seeded replay, and a
//! crash landing mid-reclaim replaying to identical VMA/PD tables. This
//! is the determinism + conservation gate CI runs, and it emits
//! `BENCH_memory.json` with the headline residency numbers.
//!
//! ```sh
//! cargo run --release --example soak
//! ```

use jord_workloads::{SoakCampaign, Workload, WorkloadKind};

fn main() {
    let hotel = Workload::build(WorkloadKind::Hotel);
    let campaign = SoakCampaign::new(2.0e6, 14_000).seed(42);

    println!(
        "Soak campaign: {} x {} requests at {:.1} MRPS base, {} diurnal days, \
         {} initial workers (autoscaler {}..{}), budget {} MiB/worker, seed {}",
        hotel.name(),
        campaign.requests,
        campaign.rate_rps / 1e6,
        campaign.days,
        campaign.workers,
        campaign.autoscale.min_workers,
        campaign.autoscale.max_workers,
        campaign.memory.resident_budget_bytes >> 20,
        campaign.seed,
    );
    println!();

    let report = campaign.run(&hotel);
    println!("{}", report.table());
    println!(
        "week totals: {} offered, {} completed, {} shed; peak fleet resident {} bytes \
         across {} peak workers; p99 {:.3} µs",
        report.offered,
        report.completed,
        report.shed,
        report.peak_resident_bytes,
        report.peak_workers,
        report.p99_us,
    );
    let m = &report.memory;
    println!(
        "memory ledger: mapped {} == resident {} + reclaimed {}; \
         {} pool evictions ({} bytes), {} compactions ({} slots), \
         {} pressure transitions, journal {} B + checkpoints {} B",
        m.mapped_bytes,
        m.resident_bytes,
        m.reclaimed_bytes,
        m.pool_evictions,
        m.evicted_bytes,
        m.compactions,
        m.compacted_slots,
        m.pressure_transitions,
        m.journal_bytes,
        m.checkpoint_bytes,
    );

    // Crash mid-reclaim: the replay-identity probe CI also gates on.
    let crash = campaign.crash_replay(&hotel);
    println!(
        "crash-mid-reclaim: {} crash(es), ledger re-balanced, traces and \
         tables bit-identical across replay",
        crash.crash.crashes,
    );

    let bench = format!(
        "{{\n  \"peak_resident_bytes\": {},\n  \"reclaimed_bytes\": {},\n  \
         \"pool_evictions\": {},\n  \"evicted_bytes\": {},\n  \
         \"compactions\": {},\n  \"pressure_transitions\": {},\n  \
         \"peak_workers\": {},\n  \"p99_us\": {:.3},\n  \"trace_hash\": {}\n}}\n",
        report.peak_resident_bytes,
        m.reclaimed_bytes,
        m.pool_evictions,
        m.evicted_bytes,
        m.compactions,
        m.pressure_transitions,
        report.peak_workers,
        report.p99_us,
        report.trace_hash,
    );
    std::fs::write("BENCH_memory.json", &bench).expect("write BENCH_memory.json");
    println!("wrote BENCH_memory.json");
}
