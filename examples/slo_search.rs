//! The paper's headline metric, end to end: throughput under SLO.
//!
//! Measures the SLO (10× Jord_NI minimal-load latency, §5), sweeps Jord and
//! Jord_BT over increasing load on the Hotel workload, and reports the
//! highest load each sustains — a compact version of what
//! `cargo bench --bench fig9_performance` and `--bench fig13_btree` do for
//! every workload.
//!
//! Run with: `cargo run --release --example slo_search`

use jord::prelude::*;

fn main() {
    let workload = Workload::build(WorkloadKind::Hotel);
    let slo = measure_slo(&workload, 0.05e6, 2_000).expect("probe produced latencies");
    println!(
        "Hotel SLO = {:.1} us (10x Jord_NI latency at 50 kRPS)",
        slo.as_us_f64()
    );

    let loads: Vec<f64> = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0].map(|x| x * 1e6).into();
    for system in [System::Jord, System::JordBt] {
        let (points, best) = throughput_under_slo(system, &workload, &loads, slo, 4_000)
            .expect("sweep produced latencies");
        println!("\n{:10}  p99 by load:", system.label());
        for p in &points {
            let marker = if p.p99_us <= slo.as_us_f64() {
                "meets"
            } else {
                "FAILS"
            };
            println!(
                "  {:>5.1} MRPS -> p99 {:>8.1} us   {marker}",
                p.rate_rps / 1e6,
                p.p99_us
            );
        }
        println!(
            "{:10}  throughput under SLO: {:.1} MRPS",
            system.label(),
            best / 1e6
        );
    }
}
