//! Scaling a Jord worker server from 16 cores to a dual-socket 256-core
//! machine — the §6.3 study, showing why orchestrators must be per-socket.
//!
//! Run with: `cargo run --release --example scale_out`

use jord::prelude::*;

fn main() {
    let workload = Workload::build(WorkloadKind::Hipster);
    let scales = [
        ("16-core", MachineConfig::scaled(16)),
        ("64-core", MachineConfig::scaled(64)),
        ("256-core", MachineConfig::scaled(256)),
        ("2-socket", MachineConfig::two_socket()),
    ];

    println!("single orchestrator scanning every executor (the anti-pattern):");
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "scale", "serv(us)", "dispatch(us)", "shootdown(us)"
    );
    for (name, machine) in &scales {
        let rep = RunSpec::new(System::Jord, 2.0e4)
            .on(machine.clone())
            .orchestrators(1)
            .requests(2_000, 200)
            .run(&workload);
        println!(
            "{:>10} {:>12.2} {:>14.3} {:>14.3}",
            name,
            rep.service.mean().unwrap().as_us_f64(),
            rep.dispatch_ns.mean().unwrap_or(0.0) / 1e3,
            rep.shootdown_ns.mean().unwrap_or(0.0) / 1e3,
        );
    }

    println!("\nper-socket orchestrator groups (the paper's recommendation):");
    println!(
        "{:>10} {:>8} {:>14} {:>10}",
        "scale", "orchs", "dispatch(us)", "p99(us)"
    );
    for (name, machine) in &scales {
        let orchs = (machine.cores / 8).max(1);
        let rep = RunSpec::new(System::Jord, 2.0e4)
            .on(machine.clone())
            .orchestrators(orchs)
            .requests(2_000, 200)
            .run(&workload);
        println!(
            "{:>10} {:>8} {:>14.3} {:>10.1}",
            name,
            orchs,
            rep.dispatch_ns.mean().unwrap_or(0.0) / 1e3,
            rep.p99().unwrap().as_us_f64(),
        );
    }
    println!(
        "\ntakeaway: dispatch latency is the only latency that scales with the\n\
         machine; grouping executors under nearby orchestrators flattens it."
    );
}
