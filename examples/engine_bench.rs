//! Engine benchmark + determinism gate (see README "Engine bench").
//!
//! Measures the slab-backed calendar [`EventQueue`] against the recorded
//! pre-refactor binary-heap baseline on three synthetic microbenches
//! (hold model, transient burst, cancel storm), then times two end-to-end
//! campaigns (autoscale and soak) for wall-clock simulated throughput.
//!
//! This is a CI gate, not just a report. It exits nonzero unless:
//!
//! * every heap/calendar pair pops a bit-identical checksum,
//! * the hold model at 1 Mi pending events runs ≥ 2× the heap's
//!   events/sec (the headline acceptance bar for the queue swap),
//! * the autoscale campaign reproduces the golden trace hash and window
//!   digest recorded under the old heap queue, twice in a row —
//!   sequentially AND on the conservative parallel engine at 4 threads,
//! * an 8-worker cluster-scale campaign pops the identical trace hash
//!   at every thread count in {1, 2, 4, 8}, and — on machines with ≥ 4
//!   cores — runs ≥ 2× faster at 4 threads than sequentially (the gate
//!   self-skips with an annotation on smaller runners; a 1-core box
//!   cannot demonstrate wall-clock parallelism).
//!
//! Emits `BENCH_engine.json` with every number printed.
//!
//! ```sh
//! cargo run --release --example engine_bench
//! ```

use std::time::Instant;

use jord_bench::engine::{cancel_storm, hold_model, transient, MicroResult};
use jord_core::{ClusterConfig, ClusterDispatcher, EngineConfig, RuntimeConfig, SystemVariant};
use jord_hw::MachineConfig;
use jord_workloads::{AutoscaleCampaign, LoadGen, SoakCampaign, Workload, WorkloadKind};

/// Golden constants recorded under the pre-refactor heap queue.
const PINNED_TRACE_HASH: u64 = 0x6dc108d71b0890cb;
const PINNED_WINDOW_DIGEST: u64 = 0x80300dcf4f0511fa;
/// Acceptance bar: calendar ≥ 2× heap on the headline schedule/pop bench.
const GATE_SPEEDUP: f64 = 2.0;
/// Acceptance bar: 4 threads ≥ 2× sequential on the cluster-scale
/// campaign, enforced only where the hardware can express it.
const GATE_PARALLEL_SPEEDUP: f64 = 2.0;
/// Minimum cores for the parallel-speedup gate to be meaningful.
const GATE_PARALLEL_MIN_CORES: usize = 4;

fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn print_micro(r: &MicroResult) {
    println!(
        "{:>10}: heap {:>8.2} Mev/s  calendar {:>8.2} Mev/s  speedup {:>6.2}x  checksums {}",
        r.name,
        r.heap_eps / 1e6,
        r.calendar_eps / 1e6,
        r.speedup(),
        if r.checksums_match {
            "match"
        } else {
            "DIVERGE"
        },
    );
}

/// One cluster-scale run: 8 workers, a burst far beyond their
/// instantaneous capacity (deep queues keep every shard busy between
/// barriers), on the sequential engine (`threads == None`) or the
/// conservative parallel engine.
fn cluster_scale(hotel: &Workload, threads: Option<usize>) -> (f64, u64, u64) {
    const WORKERS: usize = 8;
    const SEED: u64 = 42;
    const RATE_RPS: f64 = 8.0e6;
    const REQUESTS: usize = 12_000;
    let template =
        RuntimeConfig::variant_on(SystemVariant::Jord, MachineConfig::isca25()).with_seed(SEED);
    let mut cfg = ClusterConfig::new(WORKERS, SEED, template);
    cfg.engine = threads.map(EngineConfig::threads);
    let mut cluster =
        ClusterDispatcher::new(cfg, hotel.registry.clone()).expect("valid cluster config");
    let mut gen = LoadGen::new(hotel, SEED).expect("workload mix is sampleable");
    for (t, f, b) in gen.arrivals(RATE_RPS, REQUESTS) {
        cluster.push_request(t, f, b);
    }
    let start = Instant::now();
    let rep = cluster.run();
    (start.elapsed().as_secs_f64(), rep.trace_hash, rep.completed)
}

fn main() {
    println!("== engine microbenches (events/sec, heap baseline vs calendar queue) ==");
    let hold_64k = hold_model(65_536, 2_000_000, 42);
    print_micro(&hold_64k);
    // The gated configuration runs best-of-3: shared CI runners jitter
    // individual samples by ±20%, and the gate is about the queue, not
    // the neighbours.
    let hold_1m = (0..3)
        .map(|_| hold_model(1_048_576, 2_000_000, 42))
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("three samples");
    print_micro(&hold_1m);
    let burst = transient(1_000_000, 42);
    print_micro(&burst);
    let storm = cancel_storm(4_000, 42);
    print_micro(&storm);

    for r in [&hold_64k, &hold_1m, &burst, &storm] {
        assert!(
            r.checksums_match,
            "{}: heap and calendar popped different schedules",
            r.name
        );
    }
    assert!(
        hold_1m.speedup() >= GATE_SPEEDUP,
        "hold@1Mi best-of-3 speedup {:.2}x is below the {GATE_SPEEDUP:.1}x acceptance bar",
        hold_1m.speedup()
    );

    println!();
    println!("== end-to-end campaigns (wall-clock, release profile) ==");
    let hotel = Workload::build(WorkloadKind::Hotel);
    let campaign = AutoscaleCampaign::new(1.5e6, 1_500).seed(42);
    let mut auto_hashes = Vec::new();
    let mut auto_wall = 0.0;
    for _ in 0..2 {
        let start = Instant::now();
        let (rep, windows) = campaign.run_cluster(&hotel, &campaign.crowd, true, |_, _| {});
        auto_wall = start.elapsed().as_secs_f64();
        let digest = fnv1a(windows.iter().flat_map(|w| format!("{w:?}").into_bytes()));
        auto_hashes.push((rep.trace_hash, digest, rep.completed));
    }
    assert_eq!(auto_hashes[0], auto_hashes[1], "autoscale replay diverged");
    let (trace, digest, completed) = auto_hashes[0];
    assert_eq!(trace, PINNED_TRACE_HASH, "autoscale trace hash drifted");
    assert_eq!(
        digest, PINNED_WINDOW_DIGEST,
        "autoscale window digest drifted"
    );
    let auto_krps = completed as f64 / auto_wall / 1e3;
    println!(
        "autoscale: {completed} requests in {auto_wall:.2}s wall ({auto_krps:.1} k simulated req/s), \
         trace 0x{trace:016x} bit-identical across replay and pinned to the heap-era recording"
    );

    // The same campaign on the conservative parallel engine must
    // reproduce the same heap-era golden constants bit-for-bit.
    let par_campaign = AutoscaleCampaign::new(1.5e6, 1_500)
        .seed(42)
        .engine(EngineConfig::threads(4));
    let (par_rep, par_windows) =
        par_campaign.run_cluster(&hotel, &par_campaign.crowd, true, |_, _| {});
    let par_digest = fnv1a(
        par_windows
            .iter()
            .flat_map(|w| format!("{w:?}").into_bytes()),
    );
    assert_eq!(
        par_rep.trace_hash, PINNED_TRACE_HASH,
        "parallel engine (4 threads) diverged from the golden trace hash"
    );
    assert_eq!(
        par_digest, PINNED_WINDOW_DIGEST,
        "parallel engine (4 threads) diverged from the golden window digest"
    );
    println!(
        "autoscale @ 4 threads: trace 0x{:016x} — reproduces the sequential golden constants",
        par_rep.trace_hash
    );

    println!();
    println!("== cluster-scale campaign (8 workers, sequential vs parallel engine) ==");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (seq_wall, seq_trace, seq_completed) = cluster_scale(&hotel, None);
    println!(
        "sequential: {seq_completed} requests in {seq_wall:.2}s wall, trace 0x{seq_trace:016x}"
    );
    let mut scale_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (wall, trace_t, completed_t) = cluster_scale(&hotel, Some(threads));
        assert_eq!(
            trace_t, seq_trace,
            "{threads}-thread cluster-scale run diverged from the sequential trace"
        );
        assert_eq!(completed_t, seq_completed);
        let speedup = seq_wall / wall;
        println!(
            "{threads:>2} threads: {completed_t} requests in {wall:.2}s wall \
             (speedup {speedup:>5.2}x), trace bit-identical"
        );
        scale_rows.push((threads, wall, speedup));
    }
    let speedup_4t = scale_rows
        .iter()
        .find(|&&(t, _, _)| t == 4)
        .map(|&(_, _, s)| s)
        .expect("4-thread row");
    let parallel_gate = if cores >= GATE_PARALLEL_MIN_CORES {
        assert!(
            speedup_4t >= GATE_PARALLEL_SPEEDUP,
            "4-thread cluster-scale speedup {speedup_4t:.2}x is below the \
             {GATE_PARALLEL_SPEEDUP:.1}x acceptance bar on a {cores}-core machine"
        );
        format!("\"enforced ({cores} cores)\"")
    } else {
        // Bit-identity was still gated above; only the wall-clock claim
        // needs real cores.
        println!(
            "parallel speedup gate SKIPPED: {cores} core(s) available, \
             need >= {GATE_PARALLEL_MIN_CORES} to measure wall-clock parallelism"
        );
        format!("\"skipped ({cores} core(s): cannot express parallelism)\"")
    };

    let soak = SoakCampaign::new(2.0e6, 14_000).seed(42);
    let start = Instant::now();
    let soak_rep = soak.run(&hotel);
    let soak_wall = start.elapsed().as_secs_f64();
    let soak_krps = soak_rep.completed as f64 / soak_wall / 1e3;
    println!(
        "soak: {} requests over {} diurnal days in {soak_wall:.2}s wall ({soak_krps:.1} k simulated req/s)",
        soak_rep.completed, soak.days,
    );

    let json = format!(
        "{{\n  \"gate_speedup\": {GATE_SPEEDUP},\n  \"microbench\": [\n{}\n  ],\n  \
         \"autoscale\": {{\n    \"requests\": {completed},\n    \"wall_s\": {auto_wall:.3},\n    \
         \"k_req_per_s\": {auto_krps:.1},\n    \"trace_hash\": {trace},\n    \
         \"window_digest\": {digest},\n    \"parallel_4t_trace_hash\": {}\n  }},\n  \
         \"cluster_scale\": {{\n    \"workers\": 8,\n    \"requests\": {seq_completed},\n    \
         \"cores\": {cores},\n    \"sequential_wall_s\": {seq_wall:.3},\n    \
         \"speedup_gate\": {parallel_gate},\n    \"threads\": [\n{}\n    ]\n  }},\n  \
         \"soak\": {{\n    \"requests\": {},\n    \
         \"wall_s\": {soak_wall:.3},\n    \"k_req_per_s\": {soak_krps:.1}\n  }}\n}}\n",
        [
            ("hold_64k", &hold_64k),
            ("hold_1m", &hold_1m),
            ("transient_1m", &burst),
            ("cancel_4k", &storm)
        ]
        .iter()
        .map(|(label, r)| format!(
            "    {{ \"name\": \"{label}\", \"events\": {}, \"heap_eps\": {:.0}, \
                 \"calendar_eps\": {:.0}, \"speedup\": {:.3} }}",
            r.events,
            r.heap_eps,
            r.calendar_eps,
            r.speedup(),
        ))
        .collect::<Vec<_>>()
        .join(",\n"),
        par_rep.trace_hash,
        scale_rows
            .iter()
            .map(|(t, wall, speedup)| format!(
                "      {{ \"threads\": {t}, \"wall_s\": {wall:.3}, \"speedup\": {speedup:.3} }}"
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        soak_rep.completed,
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!();
    println!("wrote BENCH_engine.json");
}
