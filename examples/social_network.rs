//! The DeathStarBench social-network workload on Jord vs enhanced
//! NightCore — the paper's motivating comparison, end to end.
//!
//! Run with: `cargo run --release --example social_network`

use jord::prelude::*;

fn main() {
    let workload = Workload::build(WorkloadKind::Social);
    println!(
        "workload: {} ({} functions; entry mix: {})",
        workload.name(),
        workload.registry.len(),
        workload
            .entries
            .iter()
            .map(|e| format!("{} {:.0}%", e.name, e.weight * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The paper's SLO: 10× the minimal-load service time on Jord_NI.
    let slo = measure_slo(&workload, 0.05e6, 2_000).expect("probe produced latencies");
    println!(
        "SLO: {:.1} us (10x Jord_NI minimal-load latency)\n",
        slo.as_us_f64()
    );

    // Sweep both systems over increasing load.
    let loads: Vec<f64> = [0.1, 0.2, 0.4, 0.6, 0.8].iter().map(|x| x * 1e6).collect();
    println!(
        "{:>8} {:>14} {:>14}",
        "MRPS", "Jord p99(us)", "NightCore p99(us)"
    );
    let mut best = [0.0f64; 2];
    for &rate in &loads {
        let mut cells = [0.0f64; 2];
        for (i, sys) in [System::Jord, System::NightCore].into_iter().enumerate() {
            let rep = RunSpec::new(sys, rate).requests(4_000, 400).run(&workload);
            let p99 = rep.p99().unwrap();
            cells[i] = p99.as_us_f64();
            if p99 <= slo {
                best[i] = best[i].max(rate);
            }
        }
        println!("{:>8.2} {:>14.1} {:>14.1}", rate / 1e6, cells[0], cells[1]);
    }
    println!(
        "\nthroughput under SLO: Jord {:.2} MRPS vs NightCore {:.2} MRPS",
        best[0] / 1e6,
        best[1] / 1e6
    );

    // Where does the time go? ComposePost (the ~45-75 µs tail of Fig. 10).
    let rep = RunSpec::new(System::Jord, 0.1e6)
        .requests(4_000, 400)
        .run(&workload);
    let cp = workload.selected_fn("CP").expect("ComposePost deployed");
    let fb = &rep.functions[&cp];
    let (exec, isolation, dispatch) = fb.mean_parts_ns();
    println!(
        "\nComposePost breakdown: exec {:.1} us, isolation {:.2} us, dispatch {:.2} us \
         (service {:.1} us over {} runs)",
        exec / 1e3,
        isolation / 1e3,
        dispatch / 1e3,
        fb.mean_service_ns() / 1e3,
        fb.count
    );
}
