//! Storage chaos campaign (see README "Storage chaos").
//!
//! Sweeps every durable-storage fault kind — torn tail, bit flip, dropped
//! write, duplicated frame, truncated checkpoint — across crash instants
//! and both crash semantics on a single worker, then kills a cluster
//! worker once per fault kind with the fault armed on its journal. The
//! campaign asserts the recovery ladder lands on each fault's allowed
//! rung, the request ledger balances at every point, at-least-once
//! recovery never terminally fails a request, the fault-free control
//! recovers by exact replay to crash-free parity, and the cluster
//! re-derives every request even past an unrecoverable journal. This is
//! the durability gate CI runs, and it emits `BENCH_durability.json`.
//!
//! ```sh
//! cargo run --release --example storage_chaos
//! ```

use jord_workloads::{StorageChaosCampaign, Workload, WorkloadKind};

fn main() {
    let hotel = Workload::build(WorkloadKind::Hotel);
    let campaign = StorageChaosCampaign::new(4.0e6, 1_500).seed(42);

    println!(
        "Storage chaos: {} x {} requests at {:.1} MRPS, {} fault kinds x \
         {} instants x {} semantics, checkpoint every {} records, seed {}",
        hotel.name(),
        campaign.requests,
        campaign.rate_rps / 1e6,
        campaign.faults.len(),
        campaign.instants.len(),
        campaign.semantics.len(),
        campaign.checkpoint_every,
        campaign.seed,
    );
    println!();

    let report = campaign.run(&hotel);
    println!("{}", report.table());

    let fault_points = &report.points[2..];
    let demoted: u64 = fault_points.iter().map(|p| p.demoted).sum();
    let quarantined: u64 = fault_points.iter().map(|p| p.frames_quarantined).sum();
    let seal_failures: u64 = fault_points.iter().map(|p| p.seal_failures).sum();
    let truncated: u64 = fault_points.iter().map(|p| p.truncated_bytes).sum();
    let dups: u64 = fault_points.iter().map(|p| p.duplicates_dropped).sum();
    println!(
        "worker sweep: {} fault points, all ledgers balanced; control rung {}; \
         {} frames quarantined, {} seal failures, {} bytes truncated, \
         {} duplicate frames dropped, {} live entries demoted",
        fault_points.len(),
        report.control().rung,
        quarantined,
        seal_failures,
        truncated,
        dups,
        demoted,
    );

    let cluster = campaign.run_cluster(&hotel);
    for p in &cluster {
        println!(
            "cluster kill + {:<21} rung {:<20} {} offered, {} completed, lost {}",
            p.fault, p.rung, p.offered, p.completed, p.lost,
        );
    }
    println!(
        "cluster sweep: every fault kind re-derived to completed == offered \
         with lost == 0"
    );

    // Determinism probe: the same seeded campaign must reproduce every
    // point, trace hashes included.
    let rerun = campaign.run(&hotel);
    assert_eq!(report, rerun, "seeded campaign must be bit-reproducible");
    println!(
        "replay: second run reproduced all {} points",
        report.points.len()
    );

    let bench = format!(
        "{{\n  \"fault_points\": {},\n  \"cluster_points\": {},\n  \
         \"frames_quarantined\": {},\n  \"seal_failures\": {},\n  \
         \"truncated_bytes\": {},\n  \"duplicates_dropped\": {},\n  \
         \"demoted\": {},\n  \"control_completed\": {},\n  \
         \"baseline_completed\": {},\n  \"control_trace_hash\": {}\n}}\n",
        fault_points.len(),
        cluster.len(),
        quarantined,
        seal_failures,
        truncated,
        dups,
        demoted,
        report.control().completed,
        report.baseline().completed,
        report.control().trace_hash,
    );
    std::fs::write("BENCH_durability.json", &bench).expect("write BENCH_durability.json");
    println!("wrote BENCH_durability.json");
}
