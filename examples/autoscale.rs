//! Overload survival: a ×4 flash crowd against the SLO-driven
//! ClusterAutoscaler and its brownout ladder (see README "Autoscaling").
//!
//! Runs the seeded autoscale campaign over the Hotel workload: a
//! pinned-fleet crowd baseline, the same crowd with the autoscaler
//! engaged, a kill racing a scale-down drain, and diurnal/bursty
//! traffic. The campaign asserts the overload-survival contract at every
//! point — `offered == completed + failed + shed` with zero lost, the
//! elastic fleet shedding no more than the pinned one, at most one scale
//! reversal per cooldown window, and the mid-drain crash convicted by
//! the failure detector. This example additionally replays the
//! autoscaled crowd run and asserts the decision sequence and fleet
//! trace hash are bit-identical — the determinism CI gates on.
//!
//! ```sh
//! cargo run --release --example autoscale
//! ```

use jord_workloads::{AutoscaleCampaign, Workload, WorkloadKind};

fn main() {
    let hotel = Workload::build(WorkloadKind::Hotel);
    let campaign = AutoscaleCampaign::new(2.0e6, 4_000).seed(42);

    println!(
        "Autoscale campaign: {} x {} requests at {:.1} MRPS base, \
         {} initial workers (autoscaler {}..{}), seed {}",
        hotel.name(),
        campaign.requests,
        campaign.rate_rps / 1e6,
        campaign.workers,
        campaign.autoscale.min_workers,
        campaign.autoscale.max_workers,
        campaign.seed,
    );
    println!();

    let report = campaign.run(&hotel);
    println!("{}", report.table());
    assert!(
        report.lossless(),
        "every ledger must balance with zero lost"
    );

    // Determinism gate: the same seed must replay the same decisions.
    let (rep_a, win_a) = campaign.run_cluster(&hotel, &campaign.crowd, true, |_, _| {});
    let (rep_b, win_b) = campaign.run_cluster(&hotel, &campaign.crowd, true, |_, _| {});
    assert!(!win_a.is_empty(), "autoscaled runs must record windows");
    assert_eq!(win_a, win_b, "decision sequences must replay exactly");
    assert_eq!(
        rep_a.trace_hash, rep_b.trace_hash,
        "fleet traces must match"
    );
    assert_eq!(
        rep_a.autoscale, rep_b.autoscale,
        "AutoscaleStats must be deterministic"
    );

    let pinned = report.pinned();
    let scaled = &report.points[1];
    println!(
        "flash crowd x4: pinned fleet shed {} of {} ({:.1}% goodput); \
         elastic fleet shed {} at peak {} workers ({:.3} worker-s, \
         {:.0}% SLO attainment)",
        pinned.shed,
        pinned.offered,
        pinned.goodput * 100.0,
        scaled.shed,
        scaled.peak_workers,
        scaled.worker_seconds,
        scaled.slo_attainment * 100.0,
    );
    println!("ledger balanced, decisions deterministic: OK");
}
