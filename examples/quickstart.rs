//! Quickstart: deploy two functions on a Jord worker server, invoke them,
//! and read the measurement report.
//!
//! Run with: `cargo run --release --example quickstart`

use jord::prelude::*;

fn main() {
    // 1. Write functions (the Rust analogue of the paper's Listing 1):
    //    a leaf service and an entry function that calls it and returns.
    let mut registry = FunctionRegistry::new();
    let thumbnail = registry.register(
        FunctionSpec::new("thumbnail")
            .op(FuncOp::ReadInput) // read the image reference from the ArgBuf
            .compute(2_000.0, 0.3) // ~2 µs of resizing work
            .op(FuncOp::WriteOutput),
    );
    let upload = registry.register(
        FunctionSpec::new("upload")
            .op(FuncOp::ReadInput)
            .compute(800.0, 0.2) // validate + store metadata
            .call(thumbnail, 256) // jord::call — synchronous, zero-copy ArgBuf
            .op(FuncOp::WriteOutput),
    );

    // 2. Stand up a worker server: the paper's Table 2 machine (32 cores
    //    @4 GHz), 4 orchestrators + 28 executors, full in-process isolation.
    let mut server =
        WorkerServer::new(RuntimeConfig::jord_32(), registry).expect("valid configuration");

    // 3. Offer an open-loop Poisson load: 200k requests/s for 10k requests.
    let mut rng = Rng::new(7);
    let mut t = SimTime::ZERO;
    for _ in 0..10_000 {
        t += SimDuration::from_ns_f64(rng.exponential(5_000.0));
        server.push_request(t, upload, 512);
    }

    // 4. Run to completion and inspect.
    let report = server.run();
    println!("requests completed : {}", report.completed);
    println!("invocations        : {}", report.invocations);
    println!(
        "request latency    : p50 {:.2} us, p99 {:.2} us",
        report.latency.quantile(0.50).unwrap().as_us_f64(),
        report.p99().unwrap().as_us_f64()
    );
    println!(
        "isolation+dispatch : {:.0} ns per request (the overhead Jord buys\n\
         \u{20}                    with nanosecond-scale VMA/PD operations)",
        report.overhead_per_request_ns()
    );
}
