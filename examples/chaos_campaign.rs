//! Chaos campaign: sweep injected fault rates over the Hotel workload and
//! print the goodput/latency ladder (see README "Chaos testing").
//!
//! ```sh
//! cargo run --release --example chaos_campaign
//! ```

use jord_core::RecoveryPolicy;
use jord_workloads::{ChaosSpec, Workload, WorkloadKind};

fn main() {
    let hotel = Workload::build(WorkloadKind::Hotel);
    let report = ChaosSpec::new(0.5e6)
        .rates(vec![1e-4, 1e-3, 1e-2])
        .recovery(RecoveryPolicy {
            max_retries: 2,
            ..RecoveryPolicy::default()
        })
        .run(&hotel);
    println!("{}", report.table());
    assert!(
        report.degrades_gracefully(0.9, 0.1),
        "goodput ladder not graceful: {:?}",
        report.points
    );
    println!("graceful degradation: OK (floor 0.9, cliff tolerance 0.1)");
}
