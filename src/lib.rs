//! # jord — single-address-space FaaS with nanosecond-scale in-process isolation
//!
//! A comprehensive Rust reproduction of *"Single-Address-Space FaaS with
//! Jord"* (Li et al., ISCA 2025): the runtime, the hardware/software
//! co-designed memory-isolation mechanism, the baselines, the workloads,
//! and a benchmark harness that regenerates every table and figure of the
//! paper's evaluation.
//!
//! This crate is a facade; the system lives in seven focused crates:
//!
//! * [`sim`] (`jord-sim`) — deterministic discrete-event simulation kernel.
//! * [`hw`] (`jord-hw`) — the Table 2 machine: mesh NoC, MESI directory
//!   coherence, I/D-VLBs, VTW, VTD shootdown, Jord's CSRs and faults.
//! * [`vma`] (`jord-vma`) — size-class-encoded VAs, the plain-list VMA
//!   table, the B-tree ablation, free lists.
//! * [`privlib`] (`jord-privlib`) — the trusted privileged library
//!   (Table 1 APIs, call gates, policy checks).
//! * [`core`] (`jord-core`) — orchestrators (JBSQ), executors
//!   (continuations + per-invocation PDs), ArgBufs, the worker server.
//! * [`nightcore`] (`jord-nightcore`) — the enhanced NightCore baseline.
//! * [`workloads`] (`jord-workloads`) — Hipster/Hotel/Media/Social, the
//!   open-loop Poisson load generator, SLO machinery.
//!
//! # Quickstart
//!
//! ```
//! use jord::prelude::*;
//!
//! // Deploy two functions: a leaf and an entry that calls it.
//! let mut registry = FunctionRegistry::new();
//! let greet = registry.register(
//!     FunctionSpec::new("greet").compute(400.0, 0.2),
//! );
//! let front = registry.register(
//!     FunctionSpec::new("frontdoor")
//!         .op(FuncOp::ReadInput)
//!         .compute(300.0, 0.2)
//!         .call(greet, 128)
//!         .op(FuncOp::WriteOutput),
//! );
//!
//! // Run them on a simulated 32-core Jord worker server.
//! let mut server = WorkerServer::new(RuntimeConfig::jord_32(), registry).unwrap();
//! server.push_request(SimTime::ZERO, front, 512);
//! let report = server.run();
//! assert_eq!(report.completed, 1);
//! assert_eq!(report.invocations, 2);
//! ```
//!
//! See `examples/` for realistic scenarios and `crates/bench/benches/` for
//! the paper-reproduction harnesses.

pub use jord_core as core;
pub use jord_hw as hw;
pub use jord_nightcore as nightcore;
pub use jord_privlib as privlib;
pub use jord_sim as sim;
pub use jord_vma as vma;
pub use jord_workloads as workloads;

/// The most common imports for building and running Jord systems.
pub mod prelude {
    pub use jord_core::{
        ArgBuf, FuncOp, FunctionId, FunctionRegistry, FunctionSpec, RunReport, RuntimeConfig,
        SystemVariant, WorkerServer,
    };
    pub use jord_hw::{CoreId, Fault, Machine, MachineConfig, PdId, Perm};
    pub use jord_nightcore::{NightCoreConfig, NightCoreServer};
    pub use jord_privlib::{IsolationMode, PrivError, PrivLib, TableChoice};
    pub use jord_sim::{LatencyHistogram, Rng, SimDuration, SimTime, TimeDist};
    pub use jord_workloads::{
        measure_slo, runner::RunSpec, throughput_under_slo, LoadGen, System, Workload, WorkloadKind,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let _ = MachineConfig::isca25();
        let _ = FunctionSpec::new("x");
        let _ = SimTime::ZERO;
    }
}
